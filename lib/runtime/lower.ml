(* Slot-resolved interpreter IR — the evaluation fast path.

   [Interp] resolves every variable, parameter and global by *string*
   through per-frame [Hashtbl]s, re-derives vectorization modes, and
   re-dispatches every intrinsic and cost-model call on each visit. This
   pass lowers a typechecked program once: names become integer slots into
   per-frame arrays, loop vectorization modes and per-operation SIMD cost
   tables are baked into the nodes, and call/intrinsic dispatch is
   pre-resolved. The evaluator over the IR reproduces [Interp.run]
   bit-for-bit — same charges in the same order, same trap messages, same
   timer enter/exit sequence, same records — it only removes the repeated
   string-keyed lookups (see DESIGN.md §6 and the [test_lower] QCheck
   equivalence property).

   Procedures additionally carry a cache key derived from the precision
   signature of every declaration their lowered body can observe (their
   own scope, all unit scopes, and the scopes of transitively reachable
   callees), so unchanged procedures are reused across the thousands of
   variants a campaign evaluates. *)

open Fortran

type vmode = Vscalar | Vnarrow | Vfull

let mode_idx = function Vscalar -> 0 | Vnarrow -> 1 | Vfull -> 2
let kind_idx = function Ast.K4 -> 0 | Ast.K8 -> 1

(* cost tables indexed [mode_idx * 2 + kind_idx]: the (vec mode × kind)
   grid of Interp's [lanes_of]-dependent charges, precomputed *)
let table6 (machine : Machine.t) f =
  let l64 = machine.Machine.lanes_f64 in
  [|
    f 1 Ast.K4; f 1 Ast.K8;
    f l64 Ast.K4; f l64 Ast.K8;
    f (Machine.lanes machine Ast.K4) Ast.K4; f (Machine.lanes machine Ast.K8) Ast.K8;
  |]

(* ------------------------------------------------------------------ *)
(* The IR                                                              *)

type ref_ =
  | Rlocal of int  (* slot in the current frame *)
  | Rglobal of int  (* slot in the per-run global store *)
  | Rparam of int  (* slot in the lazily-evaluated parameter store *)
  | Rerr of string  (* name resolution failed: trap when touched *)

type expr =
  | Elit of Value.v  (* literals, with Real_lit folded through Fp32 *)
  | Evar of { name : string; r : ref_ }
  | Eneg of { e : expr; costs : float array }  (* Sub table for the real case *)
  | Enot of expr
  | Ebin of {
      op : Ast.binop;
      a : expr;
      b : expr;
      exempt : bool;  (* either operand is a real literal: casting folds *)
      costs : float array;  (* op table ([||] for compares and logic) *)
      powmul : float array;  (* Mul table for strength-reduced powers *)
    }
  | Earr of {
      name : string;
      r : ref_;
      idx : expr array;
      mem : float array;  (* mem_cost table *)
    }
  | Ecall of call_site  (* user function in expression position *)
  | Eintr of intr
  | Etrap of string  (* statically-determined trap *)

and intr =
  | Iabs of { e : expr; costs : float array }
  | Ielem of { name : string; fn : float -> float; e : expr; costs : float array }
  | Iminmax of { name : string; args : expr array; costs : float array }
  | Imod of { a : expr; b : expr; costs : float array }  (* Div table *)
  | Iatan2 of { a : expr; b : expr; costs : float array }
  | Isign of { a : expr; b : expr; costs : float array }
  | Ireal of { e : expr; kind : Ast.real_kind option }  (* None = real(x) *)
  | Ireal_bad of { e : expr; k : int }  (* real(x, k) with unsupported k *)
  | Idble of expr
  | Iicvt of { which : int; e : expr }  (* 0 = int, 1 = nint, 2 = floor *)
  | Idot of { an : string; ar : ref_; bn : string; br : ref_ }
  | Ireduce of { name : string; rn : string; r : ref_ }  (* sum/maxval/minval *)
  | Isize of { rn : string; r : ref_; dim : expr option }
  | Iinq of { name : string; e : expr }  (* epsilon/huge/tiny *)

and call_site = {
  cs_name : string;
  cs_callee : int;  (* index into the owning body's callee-name table *)
  cs_args : arg array;
  cs_arity_trap : string option;  (* wrong arg count: trap after depth/budget *)
}

and arg =
  | Aref of { name : string; r : ref_ }  (* actual is a whole variable *)
  | Aval of { e : expr; lit : bool; co : copy_out option }

and copy_out = { co_name : string; co_r : ref_; co_idx : expr array }

type lhs =
  | Lsc of { name : string; r : ref_; rhs_lit : bool }
  | Larr of { name : string; r : ref_; idx : expr array; rhs_lit : bool }

type stmt =
  | Sassign of { tgt : lhs; rhs : expr }
  | Scall of call_site
  | Sallreduce of { send : expr; send_lit : bool; rn : string; recv : ref_; op : string }
  | Sbarrier
  | Sif of { arms : (expr * stmt array) array; els : stmt array }
  | Sdo of {
      vn : string;
      var : ref_;
      from_ : expr;
      to_ : expr;
      step : expr option;
      mode : vmode;  (* baked vectorization decision for this loop *)
      iter_overhead : float;
      body : stmt array;
    }
  | Sdo_while of { cond : expr; body : stmt array }
  | Sselect of { selector : expr; arms : (case array * stmt array) array; default : stmt array }
  | Sexit
  | Scycle
  | Sreturn
  | Sstop of string
  | Sprint of expr array
  | Strap of string

and case =
  | Cval of expr
  | Crange of expr option * expr option

type dummy = {
  d_name : string;
  d_slot : int;
  d_base : Ast.base_type;
  d_is_array : bool;
  d_writable : bool;  (* intent out/inout/none: copy-out registration *)
  d_undeclared : bool;
}

type local = { l_slot : int; l_base : Ast.base_type; l_dims : expr array }
type initr = { i_name : string; i_slot : int; i_rhs : expr; i_lit : bool }

type proc_ir = {
  p_name : string;
  p_key : string;  (* cache key when lowered through a [Cache]; "" otherwise *)
  p_result : int;  (* result slot; -1 = subroutine; -2 = function, no cell *)
  p_is_function : bool;
  p_is_wrapper : bool;
  p_inlinable : bool;
  p_nslots : int;
  p_dummies : dummy array;
  p_locals : local array;  (* allocation order = vars_of_scope order *)
  p_inits : initr array;
  p_body : stmt array;
  p_callees : string array;  (* call_site.cs_callee indexes this *)
}

(* per-variant global/parameter descriptors (cheap to rebuild, not cached) *)
type global = {
  g_slot : int;  (* canonical slot: stable across variants *)
  g_unit : string;
  g_name : string;
  g_base : Ast.base_type;
  g_extents : int array option;  (* None = non-constant extent: trap *)
  g_init : (expr * bool) option;  (* lowered initializer, rhs-literal flag *)
}

type param = { pa_name : string; pa_base : Ast.base_type; pa_init : expr option }

type program = {
  machine : Machine.t;
  has_main : bool;
  procs : proc_ir array;
  links : int array array;  (* per proc: local callee index -> proc index (-1 unknown) *)
  main_body : stmt array;
  main_key : string;  (* cache key of the main pseudo-procedure; "" uncached *)
  main_links : int array;
  aux_links : int array;  (* links for global/parameter initializer expressions *)
  globals : global array;  (* program declaration order *)
  nglobals : int;
  params : param array;
  conv_costs : float array;  (* per mode: convert_cost at Interp's conv_lanes *)
}

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)

type lenv = {
  st : Symtab.t;
  machine : Machine.t;
  in_proc : string option;
  (* proc-local non-parameter vars: name -> (slot, declared-scalar) *)
  slots : (string, int * bool) Hashtbl.t option;
  gslot : string -> string -> int;
  pslot : Symtab.var_info -> int;
  vec_mode_of : int -> vmode;
  callee_idx : string -> int;  (* interns into the owning body's callee table *)
}

let sp = Printf.sprintf

let param_key (info : Symtab.var_info) =
  (match info.v_scope with
  | Symtab.Proc_scope p -> "p:" ^ p
  | Symtab.Unit_scope u -> "u:" ^ u)
  ^ "." ^ info.v_name

let resolve_ref env name : ref_ =
  let local =
    match env.slots with
    | Some tbl -> (match Hashtbl.find_opt tbl name with Some (i, _) -> Some (Rlocal i) | None -> None)
    | None -> None
  in
  match local with
  | Some r -> r
  | None -> (
    match Symtab.lookup_var env.st ~in_proc:env.in_proc name with
    | None -> Rerr (sp "undeclared variable %s" name)
    | Some info ->
      if info.v_parameter then Rparam (env.pslot info)
      else (
        match info.v_scope with
        | Symtab.Unit_scope u -> Rglobal (env.gslot u name)
        | Symtab.Proc_scope p -> Rerr (sp "variable %s local to %s referenced out of scope" name p)))

let optab env op = table6 env.machine (fun lanes k -> Machine.op_cost env.machine ~lanes k op)
let intrtab env name =
  table6 env.machine (fun lanes k -> Machine.intrinsic_cost env.machine ~lanes k name)
let memtab env = table6 env.machine (fun lanes k -> Machine.mem_cost env.machine ~lanes k)

let is_real_literal = function Ast.Real_lit _ -> true | _ -> false

let elem_fn = function
  | "sqrt" -> sqrt | "exp" -> exp | "log" -> log | "log10" -> log10
  | "sin" -> sin | "cos" -> cos | "tan" -> tan | "atan" -> atan
  | "asin" -> asin | "acos" -> acos | "sinh" -> sinh | "cosh" -> cosh
  | "tanh" -> tanh | "aint" -> Float.trunc | "anint" -> Float.round
  | _ -> assert false

let rec lower_expr env (e : Ast.expr) : expr =
  match e with
  | Ast.Int_lit i -> Elit (Value.Vint i)
  | Ast.Real_lit { value; kind; _ } -> Elit (Value.Vreal (Fp32.of_kind kind value, kind))
  | Ast.Logical_lit b -> Elit (Value.Vlog b)
  | Ast.Str_lit s -> Elit (Value.Vstr s)
  | Ast.Var name -> Evar { name; r = resolve_ref env name }
  | Ast.Unop (Ast.Neg, e1) -> Eneg { e = lower_expr env e1; costs = optab env Ast.Sub }
  | Ast.Unop (Ast.Not, e1) -> Enot (lower_expr env e1)
  | Ast.Binop (op, a, b) ->
    let arith = match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow -> true
      | _ -> false
    in
    Ebin
      {
        op;
        a = lower_expr env a;
        b = lower_expr env b;
        exempt = is_real_literal a || is_real_literal b;
        costs = (if arith then optab env op else [||]);
        powmul = (if op = Ast.Pow then optab env Ast.Mul else [||]);
      }
  | Ast.Index (name, args) -> (
    let local = match env.slots with Some tbl -> Hashtbl.find_opt tbl name | None -> None in
    match local with
    | Some (i, _scalar) ->
      Earr { name; r = Rlocal i; idx = lower_indices env args; mem = memtab env }
    | None -> (
      match Symtab.lookup_var env.st ~in_proc:env.in_proc name with
      | Some info when info.v_dims <> [] ->
        Earr { name; r = resolve_ref env name; idx = lower_indices env args; mem = memtab env }
      | Some _ -> Etrap (sp "scalar %s subscripted" name)
      | None ->
        if Builtins.is_intrinsic_function name then lower_intrinsic env name args
        else Ecall (lower_call env name args)))

and lower_indices env args = Array.of_list (List.map (lower_expr env) args)

and lower_intrinsic env name args : expr =
  let unary k =
    match args with
    | [ a ] -> k (lower_expr env a)
    | _ -> Etrap (sp "intrinsic %s expects one argument" name)
  in
  match name with
  | "abs" -> unary (fun e -> Eintr (Iabs { e; costs = intrtab env name }))
  | "sqrt" | "exp" | "log" | "log10" | "sin" | "cos" | "tan" | "atan" | "asin" | "acos"
  | "sinh" | "cosh" | "tanh" | "aint" | "anint" ->
    unary (fun e -> Eintr (Ielem { name; fn = elem_fn name; e; costs = intrtab env name }))
  | "min" | "max" ->
    Eintr
      (Iminmax
         { name; args = Array.of_list (List.map (lower_expr env) args); costs = intrtab env name })
  | "mod" -> (
    match args with
    | [ a; b ] -> Eintr (Imod { a = lower_expr env a; b = lower_expr env b; costs = optab env Ast.Div })
    | _ -> Etrap "mod expects two arguments")
  | "atan2" -> (
    match args with
    | [ a; b ] ->
      Eintr (Iatan2 { a = lower_expr env a; b = lower_expr env b; costs = intrtab env name })
    | _ -> Etrap "atan2 expects two arguments")
  | "sign" -> (
    match args with
    | [ a; b ] ->
      Eintr (Isign { a = lower_expr env a; b = lower_expr env b; costs = intrtab env name })
    | _ -> Etrap "sign expects two arguments")
  | "real" -> (
    match args with
    | [ a ] -> Eintr (Ireal { e = lower_expr env a; kind = None })
    | [ a; Ast.Int_lit k ] -> (
      match Token.kind_of_int k with
      | Some kk -> Eintr (Ireal { e = lower_expr env a; kind = Some kk })
      (* the reference evaluates the operand before rejecting the kind *)
      | None -> Eintr (Ireal_bad { e = lower_expr env a; k }))
    | _ -> Etrap "real() expects (x) or (x, kind)")
  | "dble" -> unary (fun e -> Eintr (Idble e))
  | "int" -> unary (fun e -> Eintr (Iicvt { which = 0; e }))
  | "nint" -> unary (fun e -> Eintr (Iicvt { which = 1; e }))
  | "floor" -> unary (fun e -> Eintr (Iicvt { which = 2; e }))
  | "dot_product" -> (
    match args with
    | [ Ast.Var a; Ast.Var b ] ->
      Eintr (Idot { an = a; ar = resolve_ref env a; bn = b; br = resolve_ref env b })
    | _ -> Etrap "dot_product expects two whole-array arguments")
  | "sum" | "maxval" | "minval" -> (
    match args with
    | [ Ast.Var arr ] -> Eintr (Ireduce { name; rn = arr; r = resolve_ref env arr })
    | _ -> Etrap (sp "%s expects a whole-array argument" name))
  | "size" -> (
    match args with
    | [ Ast.Var arr ] -> Eintr (Isize { rn = arr; r = resolve_ref env arr; dim = None })
    | [ Ast.Var arr; d ] ->
      Eintr (Isize { rn = arr; r = resolve_ref env arr; dim = Some (lower_expr env d) })
    | _ -> Etrap "size expects an array argument")
  | "epsilon" | "huge" | "tiny" -> unary (fun e -> Eintr (Iinq { name; e }))
  | _ -> Etrap (sp "unknown intrinsic %s" name)

and lower_call env name args : call_site =
  match Symtab.find_proc env.st name with
  | None ->
    (* [Interp.call_user] traps before touching the arguments *)
    { cs_name = name; cs_callee = -1; cs_args = [||];
      cs_arity_trap = Some (sp "unknown procedure %s" name) }
  | Some p ->
    let expected = List.length p.Ast.params in
    let got = List.length args in
    if expected <> got then
      { cs_name = name; cs_callee = env.callee_idx name; cs_args = [||];
        cs_arity_trap = Some (sp "procedure %s expects %d arguments, got %d" name expected got) }
    else
      let lower_arg actual =
        match actual with
        | Ast.Var a -> Aref { name = a; r = resolve_ref env a }
        | _ ->
          let co =
            (* copy-out candidate: an array-element actual over a visible
               non-parameter array (the dummy's writability is checked at
               bind time against the callee's own IR) *)
            match actual with
            | Ast.Index (arr_name, idx) -> (
              match Symtab.lookup_var env.st ~in_proc:env.in_proc arr_name with
              | Some { v_dims = _ :: _; v_parameter = false; _ } ->
                Some
                  { co_name = arr_name; co_r = resolve_ref env arr_name;
                    co_idx = lower_indices env idx }
              | Some _ | None -> None)
            | _ -> None
          in
          Aval { e = lower_expr env actual; lit = is_real_literal actual; co }
      in
      { cs_name = name; cs_callee = env.callee_idx name;
        cs_args = Array.of_list (List.map lower_arg args); cs_arity_trap = None }

let rec lower_stmt env (s : Ast.stmt) : stmt =
  match s.Ast.node with
  | Ast.Assign (lhs, rhs) ->
    let rhs_lit = is_real_literal rhs in
    let tgt =
      match lhs with
      | Ast.Lvar name -> Lsc { name; r = resolve_ref env name; rhs_lit }
      | Ast.Lindex (name, idx) ->
        Larr { name; r = resolve_ref env name; idx = lower_indices env idx; rhs_lit }
    in
    Sassign { tgt; rhs = lower_expr env rhs }
  | Ast.Call (name, args) ->
    if Builtins.is_intrinsic_subroutine name then
      (match name, args with
      | "mpi_allreduce", [ send; Ast.Var recv; Ast.Str_lit op ] ->
        Sallreduce
          { send = lower_expr env send; send_lit = is_real_literal send; rn = recv;
            recv = resolve_ref env recv; op }
      | "mpi_allreduce", _ -> Strap "mpi_allreduce expects (send, recv, 'op')"
      | "mpi_barrier", [] -> Sbarrier
      | "mpi_barrier", _ -> Strap "mpi_barrier takes no arguments"
      | _, _ -> Strap (sp "unknown builtin subroutine %s" name))
    else Scall (lower_call env name args)
  | Ast.If (arms, els) ->
    Sif
      {
        arms =
          Array.of_list
            (List.map (fun (c, blk) -> (lower_expr env c, lower_block env blk)) arms);
        els = lower_block env els;
      }
  | Ast.Do { id; var; from_; to_; step; body } ->
    let mode = env.vec_mode_of id in
    let iter_overhead =
      match mode with
      | Vscalar -> env.machine.Machine.loop_overhead
      | Vnarrow | Vfull ->
        env.machine.Machine.loop_overhead /. float_of_int env.machine.Machine.lanes_f64
    in
    Sdo
      {
        vn = var;
        var = resolve_ref env var;
        from_ = lower_expr env from_;
        to_ = lower_expr env to_;
        step = Option.map (lower_expr env) step;
        mode;
        iter_overhead;
        body = lower_block env body;
      }
  | Ast.Do_while { cond; body; _ } ->
    Sdo_while { cond = lower_expr env cond; body = lower_block env body }
  | Ast.Select { selector; arms; default } ->
    let lower_case = function
      | Ast.Case_value v -> Cval (lower_expr env v)
      | Ast.Case_range (lo, hi) ->
        Crange (Option.map (lower_expr env) lo, Option.map (lower_expr env) hi)
    in
    Sselect
      {
        selector = lower_expr env selector;
        arms =
          Array.of_list
            (List.map
               (fun (items, blk) ->
                 (Array.of_list (List.map lower_case items), lower_block env blk))
               arms);
        default = lower_block env default;
      }
  | Ast.Exit_stmt -> Sexit
  | Ast.Cycle_stmt -> Scycle
  | Ast.Return_stmt -> Sreturn
  | Ast.Stop_stmt m -> Sstop (Option.value ~default:"" m)
  | Ast.Print_stmt args -> Sprint (Array.of_list (List.map (lower_expr env) args))

and lower_block env blk = Array.of_list (List.map (lower_stmt env) blk)

(* ------------------------------------------------------------------ *)
(* Procedure lowering                                                  *)

(* interning callee-name table: one per lowered body *)
let make_interner () =
  let tbl = Hashtbl.create 8 in
  let names = ref [] in
  let n = ref 0 in
  let idx name =
    match Hashtbl.find_opt tbl name with
    | Some i -> i
    | None ->
      let i = !n in
      Hashtbl.add tbl name i;
      names := name :: !names;
      incr n;
      i
  in
  (idx, fun () -> Array.of_list (List.rev !names))

let lower_proc ~st ~machine ~gslot ~pslot ~vec_mode_of ~is_wrapper ~is_inlinable (p : Ast.proc)
    : proc_ir =
  let name = p.Ast.proc_name in
  let scope_vars = Symtab.vars_of_scope st (Symtab.Proc_scope name) in
  let slots = Hashtbl.create 16 in
  let nslots = ref 0 in
  List.iter
    (fun (info : Symtab.var_info) ->
      if not info.v_parameter then begin
        Hashtbl.replace slots info.v_name (!nslots, info.v_dims = []);
        incr nslots
      end)
    scope_vars;
  let callee_idx, callee_names = make_interner () in
  let env =
    { st; machine; in_proc = Some name; slots = Some slots; gslot; pslot; vec_mode_of; callee_idx }
  in
  let dummies =
    Array.of_list
      (List.map
         (fun dummy ->
           match Symtab.lookup_var st ~in_proc:(Some name) dummy with
           | Some dinfo when not dinfo.v_parameter ->
             let slot = fst (Hashtbl.find slots dummy) in
             {
               d_name = dummy;
               d_slot = slot;
               d_base = dinfo.v_base;
               d_is_array = dinfo.v_dims <> [];
               d_writable =
                 (match dinfo.v_intent with
                 | Some Ast.Out | Some Ast.Inout | None -> true
                 | Some Ast.In -> false);
               d_undeclared = false;
             }
           | Some _ | None ->
             { d_name = dummy; d_slot = -1; d_base = Ast.Tinteger; d_is_array = false;
               d_writable = false; d_undeclared = true })
         p.Ast.params)
  in
  let locals =
    scope_vars
    |> List.filter (fun (i : Symtab.var_info) ->
           (not i.v_parameter) && not (List.mem i.v_name p.Ast.params))
    |> List.map (fun (i : Symtab.var_info) ->
           {
             l_slot = fst (Hashtbl.find slots i.v_name);
             l_base = i.v_base;
             l_dims = Array.of_list (List.map (lower_expr env) i.v_dims);
           })
    |> Array.of_list
  in
  let inits =
    scope_vars
    |> List.filter_map (fun (i : Symtab.var_info) ->
           match i.v_init with
           | Some e when not i.v_parameter ->
             Some
               {
                 i_name = i.v_name;
                 i_slot = fst (Hashtbl.find slots i.v_name);
                 i_rhs = lower_expr env e;
                 i_lit = is_real_literal e;
               }
           | Some _ | None -> None)
    |> Array.of_list
  in
  let body = lower_block env p.Ast.proc_body in
  let p_result, p_is_function =
    match p.Ast.proc_kind with
    | Ast.Subroutine -> (-1, false)
    | Ast.Function { result } -> (
      match Hashtbl.find_opt slots result with
      | Some (i, _) -> (i, true)
      | None -> (-2, true))
  in
  {
    p_name = name;
    p_key = "";
    p_result;
    p_is_function;
    p_is_wrapper = is_wrapper;
    p_inlinable = is_inlinable;
    p_nslots = !nslots;
    p_dummies = dummies;
    p_locals = locals;
    p_inits = inits;
    p_body = body;
    p_callees = callee_names ();
  }

(* ------------------------------------------------------------------ *)
(* Per-procedure compilation cache                                     *)

module Cache = struct
  (* Keyed by procedure name + the precision signature of every
     declaration the lowered body can observe. Domain-safe: lookups and
     inserts hold [lock]; lowering on a miss runs outside it, and a race
     where two domains lower the same key keeps the first-published IR.
     One cache serves one (program family × machine): the tuner allocates
     one per campaign. *)
  type t = {
    tbl : (string, proc_ir) Hashtbl.t;
    lock : Mutex.t;
    (* traffic counters are atomics, not lock-guarded fields: worker
       domains aggregate into them without contending on [lock], and a
       reader never observes a torn total *)
    hits : int Atomic.t;
    misses : int Atomic.t;
  }

  let create () =
    { tbl = Hashtbl.create 512; lock = Mutex.create (); hits = Atomic.make 0;
      misses = Atomic.make 0 }

  let stats t = (Atomic.get t.hits, Atomic.get t.misses)

  let get_or_lower t key f =
    Mutex.lock t.lock;
    match Hashtbl.find_opt t.tbl key with
    | Some ir ->
      Atomic.incr t.hits;
      Mutex.unlock t.lock;
      ir
    | None ->
      Atomic.incr t.misses;
      Mutex.unlock t.lock;
      let ir = f () in
      Mutex.lock t.lock;
      (match Hashtbl.find_opt t.tbl key with
      | Some winner ->
        Mutex.unlock t.lock;
        winner
      | None ->
        Hashtbl.replace t.tbl key ir;
        Mutex.unlock t.lock;
        ir)
end

(* precision signature of one scope: real declarations, sorted by name
   (sorted because Rewrite splits declaration lists per kind, which
   permutes [vars_of_scope] order across variants) *)
let scope_sig st buf scope =
  let vars =
    List.sort
      (fun (a : Symtab.var_info) (b : Symtab.var_info) -> compare a.v_name b.v_name)
      (Symtab.vars_of_scope st scope)
  in
  List.iter
    (fun (i : Symtab.var_info) ->
      match i.v_base with
      | Ast.Treal Ast.K4 -> Buffer.add_string buf i.v_name; Buffer.add_string buf "!4;"
      | Ast.Treal Ast.K8 -> Buffer.add_string buf i.v_name; Buffer.add_string buf "!8;"
      | Ast.Tinteger | Ast.Tlogical -> ())
    vars

(* cache key for [root]: its own scope, every unit scope, and the scope of
   every procedure transitively reachable from it. Wrapper redirection,
   inlinability and the baked vectorization modes are all functions of
   exactly these declarations (plus the fixed machine). *)
let proc_cache_key st ~units ~cg ~roots name =
  let buf = Buffer.create 256 in
  Buffer.add_string buf name;
  Buffer.add_char buf '|';
  List.iter
    (fun u ->
      Buffer.add_string buf u;
      Buffer.add_char buf ':';
      scope_sig st buf (Symtab.Unit_scope u);
      Buffer.add_char buf '|')
    units;
  List.iter
    (fun p ->
      Buffer.add_string buf p;
      Buffer.add_char buf ':';
      scope_sig st buf (Symtab.Proc_scope p);
      Buffer.add_char buf '|')
    (List.sort_uniq compare (Analysis.Callgraph.reachable cg ~roots));
  Buffer.contents buf

(* Every cache key one lowering of [st] through a [Cache] would request
   (and [Compile.compile ?cache] re-requests, one for one): each
   procedure keyed with itself as root, then the main pseudo-procedure
   over main's callees — computed without lowering anything. The tuner
   replays these over a campaign's committed records to derive
   scheduling-independent backend traffic counters. *)
let cache_keys st =
  let prog = Symtab.program st in
  let cg = Analysis.Callgraph.build st in
  let units = List.map Ast.unit_name prog in
  let proc_keys =
    List.map
      (fun (p : Ast.proc) ->
        proc_cache_key st ~units ~cg ~roots:[ p.Ast.proc_name ] p.Ast.proc_name)
      (Ast.all_procs prog)
  in
  match Ast.main_of prog with
  | None -> proc_keys
  | Some _ ->
    let roots = List.map fst (Analysis.Callgraph.callees cg None) in
    proc_keys @ [ proc_cache_key st ~units ~cg ~roots "<main>" ]

(* ------------------------------------------------------------------ *)
(* Program assembly                                                    *)

let lower ?cache ?(wrapper_owner = fun _ -> None) ~machine st : program =
  let prog = Symtab.program st in
  (* canonical global slots: sorted (unit, name) over non-parameter
     unit-scope vars, stable under Rewrite's declaration re-splitting *)
  let unit_vars =
    List.concat_map
      (fun u ->
        let uname = Ast.unit_name u in
        List.filter_map
          (fun (i : Symtab.var_info) -> if i.v_parameter then None else Some (uname, i))
          (Symtab.vars_of_scope st (Symtab.Unit_scope uname)))
      prog
  in
  let gtbl = Hashtbl.create 64 in
  List.iteri
    (fun slot (u, n) -> Hashtbl.replace gtbl (u, n) slot)
    (List.sort compare (List.map (fun (u, (i : Symtab.var_info)) -> (u, i.v_name)) unit_vars));
  let gslot u n = try Hashtbl.find gtbl (u, n) with Not_found -> assert false in
  (* canonical parameter slots: sorted by scope-qualified key *)
  let all_params =
    List.concat_map
      (fun u ->
        let uname = Ast.unit_name u in
        let of_scope s =
          List.filter (fun (i : Symtab.var_info) -> i.v_parameter) (Symtab.vars_of_scope st s)
        in
        of_scope (Symtab.Unit_scope uname)
        @ List.concat_map
            (fun (p : Ast.proc) -> of_scope (Symtab.Proc_scope p.Ast.proc_name))
            (Ast.procs_of_unit u))
      prog
  in
  let all_params =
    List.sort (fun a b -> compare (param_key a) (param_key b)) all_params
  in
  let ptbl = Hashtbl.create 32 in
  List.iteri (fun slot info -> Hashtbl.replace ptbl (param_key info) slot) all_params;
  let pslot info = try Hashtbl.find ptbl (param_key info) with Not_found -> assert false in
  (* vectorization facts, forced only when some procedure must be lowered *)
  let vec_tbl =
    lazy
      (let reports =
         Analysis.Vectorize.analyze ~inline_stmt_limit:machine.Machine.inline_stmt_limit st
       in
       let tbl = Hashtbl.create 32 in
       List.iter
         (fun (r : Analysis.Vectorize.report) ->
           let ratio =
             if r.Analysis.Vectorize.fp_ops = 0 then
               if r.Analysis.Vectorize.conv_sites > 0 then infinity else 0.0
             else
               float_of_int r.Analysis.Vectorize.conv_sites
               /. float_of_int r.Analysis.Vectorize.fp_ops
           in
           let mode =
             if not (Analysis.Vectorize.vectorizable r) then Vscalar
             else if ratio > machine.Machine.conv_ratio_threshold then Vscalar
             else if ratio > 0.0 then Vnarrow
             else Vfull
           in
           Hashtbl.replace tbl r.Analysis.Vectorize.loop_id mode)
         reports;
       tbl)
  in
  let vec_mode_of id =
    match Hashtbl.find_opt (Lazy.force vec_tbl) id with Some m -> m | None -> Vscalar
  in
  let cg = lazy (Analysis.Callgraph.build st) in
  let units = List.map Ast.unit_name prog in
  let cached_lower ~roots key_name (f : unit -> proc_ir) =
    match cache with
    | None -> f ()
    | Some c ->
      let key = proc_cache_key st ~units ~cg:(Lazy.force cg) ~roots key_name in
      Cache.get_or_lower c key (fun () -> { (f ()) with p_key = key })
  in
  let procs_src = Ast.all_procs prog in
  let procs =
    Array.of_list
      (List.map
         (fun (p : Ast.proc) ->
           let name = p.Ast.proc_name in
           cached_lower ~roots:[ name ] name (fun () ->
               lower_proc ~st ~machine ~gslot ~pslot ~vec_mode_of
                 ~is_wrapper:(wrapper_owner name <> None)
                 ~is_inlinable:
                   (Analysis.Vectorize.inlinable st
                      ~inline_stmt_limit:machine.Machine.inline_stmt_limit p)
                 p))
         procs_src)
  in
  let proc_index = Hashtbl.create 64 in
  Array.iteri (fun i (ir : proc_ir) -> Hashtbl.replace proc_index ir.p_name i) procs;
  let link_of name = match Hashtbl.find_opt proc_index name with Some i -> i | None -> -1 in
  let links = Array.map (fun (ir : proc_ir) -> Array.map link_of ir.p_callees) procs in
  (* main body as a cached pseudo-procedure *)
  let main_ir =
    match Ast.main_of prog with
    | None -> None
    | Some m ->
      let roots =
        List.map fst (Analysis.Callgraph.callees (Lazy.force cg) None)
      in
      Some
        (cached_lower ~roots "<main>" (fun () ->
             let callee_idx, callee_names = make_interner () in
             let env =
               { st; machine; in_proc = None; slots = None; gslot; pslot; vec_mode_of;
                 callee_idx }
             in
             let body = lower_block env m.Ast.main_body in
             {
               p_name = "<main>"; p_key = ""; p_result = -1; p_is_function = false;
               p_is_wrapper = false; p_inlinable = false; p_nslots = 0; p_dummies = [||];
               p_locals = [||]; p_inits = [||]; p_body = body; p_callees = callee_names ();
             }))
  in
  let main_body, main_key, main_links =
    match main_ir with
    | Some ir -> (ir.p_body, ir.p_key, Array.map link_of ir.p_callees)
    | None -> ([||], "", [||])
  in
  (* global + parameter initializer expressions share one callee table *)
  let aux_idx, aux_names = make_interner () in
  let aux_env in_proc =
    { st; machine; in_proc; slots = None; gslot; pslot; vec_mode_of; callee_idx = aux_idx }
  in
  let globals =
    Array.of_list
      (List.map
         (fun (uname, (info : Symtab.var_info)) ->
           let extents =
             let rec go acc = function
               | [] -> Some (Array.of_list (List.rev acc))
               | d :: tl -> (
                 match Typecheck.static_int st ~in_proc:None d with
                 | Some n -> go (n :: acc) tl
                 | None -> None)
             in
             go [] info.v_dims
           in
           {
             g_slot = gslot uname info.v_name;
             g_unit = uname;
             g_name = info.v_name;
             g_base = info.v_base;
             g_extents = extents;
             g_init =
               Option.map
                 (fun e -> (lower_expr (aux_env None) e, is_real_literal e))
                 info.v_init;
           })
         unit_vars)
  in
  let params =
    Array.of_list
      (List.map
         (fun (info : Symtab.var_info) ->
           let in_proc =
             match info.v_scope with
             | Symtab.Proc_scope p -> Some p
             | Symtab.Unit_scope _ -> None
           in
           {
             pa_name = info.v_name;
             pa_base = info.v_base;
             pa_init = Option.map (fun e -> lower_expr (aux_env in_proc) e) info.v_init;
           })
         all_params)
  in
  let aux_links = Array.map link_of (aux_names ()) in
  let l64 = machine.Machine.lanes_f64 in
  {
    machine;
    has_main = main_ir <> None;
    procs;
    links;
    main_body;
    main_key;
    main_links;
    aux_links;
    globals;
    nglobals = Array.length globals;
    params;
    conv_costs =
      [|
        Machine.convert_cost machine ~lanes:1;
        Machine.convert_cost machine ~lanes:l64;
        Machine.convert_cost machine ~lanes:l64;
      |];
  }

(* ------------------------------------------------------------------ *)
(* Evaluation over the IR.

   Everything below mirrors [Interp] statement for statement: identical
   charges in identical order (float accumulation order is observable in
   [outcome.cost]), identical trap messages, identical timer sequences.
   Any behavioral edit here must be mirrored in interp.ml and vice versa;
   the [test_lower] equivalence property is the guard. *)

exception Rreturn
exception Rexit
exception Rcycle
exception Rstop of string
exception Rtrap of string
exception Rtimeout

let trap fmt = Format.kasprintf (fun m -> raise (Rtrap m)) fmt
let trap_s m = raise (Rtrap m)

let cat_index =
  let tbl = Hashtbl.create 8 in
  List.iteri (fun i c -> Hashtbl.add tbl c i) Machine.categories;
  fun c -> Hashtbl.find tbl c

let ci_flops = cat_index Machine.Cat_flops
let ci_memory = cat_index Machine.Cat_memory
let ci_convert = cat_index Machine.Cat_convert
let ci_call = cat_index Machine.Cat_call
let ci_reduction = cat_index Machine.Cat_reduction
let ci_loop = cat_index Machine.Cat_loop

type rframe = {
  pname : string;  (* for the out-of-scope trap message *)
  cells : Value.cell option array;  (* None = not yet allocated *)
  flinks : int array;  (* this body's callee index -> proc index *)
}

(* all-float one-field record: stored flat, in-place float update with
   no boxing (a [mutable float] field of this mixed record would box on
   every store — once per charge) *)
type fbox = { mutable fv : float }

type rctx = {
  rprocs : proc_ir array;
  rlinks : int array array;
  raux : int array;
  rmachine : Machine.t;
  rtimers : Timers.t;
  raccs : Timers.acc option array;  (* by proc index, resolved on first entry *)
  rcost : fbox;
  rbudget : float;  (* infinity when unbudgeted *)
  rglobals : Value.cell array;
  rparams : Value.v option array;
  rparam_defs : param array;
  rconv : float array;
  rmemtab : float array;
  mutable rvec : int;  (* mode_idx of the active vectorization mode *)
  mutable rrecords : (string * float) list;  (* reversed *)
  mutable rprinted : string list;  (* reversed *)
  mutable rdepth : int;
  mutable rcharging : bool;
  mutable rin_wrapper : bool;
  rbreakdown : float array;
}

let[@inline] charge rt i c =
  if rt.rcharging then begin
    rt.rcost.fv <- rt.rcost.fv +. c;
    rt.rbreakdown.(i) <- rt.rbreakdown.(i) +. c;
    (* [Timers.charge] spelled out so the float stays unboxed here *)
    let tm = rt.rtimers in
    tm.Timers.top.Timers.exclusive <- tm.Timers.top.Timers.exclusive +. c
  end

let[@inline] check_budget rt = if rt.rcost.fv > rt.rbudget then raise Rtimeout

(* timer accumulator of proc [pidx], cached per run. Lazy on purpose:
   resolving every proc up front would add never-entered procedures to
   the snapshot. *)
let proc_acc rt pidx name =
  match rt.raccs.(pidx) with
  | Some a -> a
  | None ->
    let a = Timers.acc_of rt.rtimers name in
    rt.raccs.(pidx) <- Some a;
    a

(* cold: called only on a non-finite rounded value; always raises *)
let bad_real kind x : float =
  if Float.is_nan x then
    trap "NaN produced in real(kind=%d) arithmetic" (Token.int_of_kind kind)
  else trap "overflow in real(kind=%d) arithmetic" (Token.int_of_kind kind)

(* kept small (trap formatting split into [bad_real]) so the float
   argument and result stay unboxed at inlined call sites *)
let[@inline] mk_realf kind x =
  let x = Fp32.of_kind kind x in
  if Float.is_finite x then x else bad_real kind x

let mk_real kind x = Value.Vreal (mk_realf kind x, kind)

let as_float = function
  | Value.Vreal (x, _) -> x
  | Value.Vint i -> float_of_int i
  | Value.Vlog _ | Value.Vstr _ -> trap "numeric value expected"

let as_int = function
  | Value.Vint i -> i
  | Value.Vreal (x, _) -> int_of_float x
  | Value.Vlog _ | Value.Vstr _ -> trap "integer value expected"

let as_bool = function
  | Value.Vlog b -> b
  | Value.Vint _ | Value.Vreal _ | Value.Vstr _ -> trap "logical value expected"

let value_kind = function
  | Value.Vreal (_, k) -> Some k
  | Value.Vint _ | Value.Vlog _ | Value.Vstr _ -> None

let promote_kind a b =
  match a, b with
  | Some Ast.K8, _ | _, Some Ast.K8 -> Some Ast.K8
  | Some Ast.K4, _ | _, Some Ast.K4 -> Some Ast.K4
  | None, None -> None

let zero_of_base (base : Ast.base_type) =
  match base with
  | Ast.Treal k -> Value.Vreal (0.0, k)
  | Ast.Tinteger -> Value.Vint 0
  | Ast.Tlogical -> Value.Vlog false

let alloc_cell (base : Ast.base_type) (extents : int list) : Value.cell =
  match extents with
  | [] -> Value.Scalar (ref (zero_of_base base))
  | _ ->
    let dims = Array.of_list extents in
    let n = Value.elements dims in
    if n < 0 || n > 50_000_000 then trap "array allocation of %d elements refused" n;
    (match base with
    | Ast.Treal kind -> Value.Real_array { kind; data = Array.make n 0.0; dims }
    | Ast.Tinteger -> Value.Int_array { data = Array.make n 0; dims }
    | Ast.Tlogical -> Value.Log_array { data = Array.make n false; dims })

let rec force_param rt slot =
  match rt.rparams.(slot) with
  | Some v -> v
  | None ->
    let pd = rt.rparam_defs.(slot) in
    let init =
      match pd.pa_init with
      | Some e -> e
      | None -> trap "parameter %s has no initializer" pd.pa_name
    in
    let saved = rt.rcharging in
    rt.rcharging <- false;
    let frame = { pname = ""; cells = [||]; flinks = rt.raux } in
    let v = eval_expr rt frame init in
    rt.rcharging <- saved;
    let v =
      match pd.pa_base with
      | Ast.Treal k -> Value.Vreal (Fp32.of_kind k (as_float v), k)
      | Ast.Tinteger -> Value.Vint (as_int v)
      | Ast.Tlogical -> Value.Vlog (as_bool v)
    in
    rt.rparams.(slot) <- Some v;
    v

and resolve_g rt frame name (r : ref_) : [ `Cell of Value.cell | `Param of Value.v ] =
  match r with
  | Rerr m -> trap_s m
  | Rparam s -> `Param (force_param rt s)
  | Rlocal i -> (
    match frame.cells.(i) with
    | Some c -> `Cell c
    | None -> trap "variable %s local to %s referenced out of scope" name frame.pname)
  | Rglobal i -> `Cell rt.rglobals.(i)

and scalar_ref rt frame name (r : ref_) =
  match resolve_g rt frame name r with
  | `Cell (Value.Scalar sr) -> sr
  | `Cell (Value.Real_array _ | Value.Int_array _ | Value.Log_array _) ->
    trap "array %s used as a scalar" name
  | `Param _ -> trap "parameter %s cannot be assigned" name

and eval_expr rt frame (e : expr) : Value.v =
  match e with
  | Elit v -> v
  | Evar { name; r } -> (
    match r with
    | Rerr m -> trap_s m
    | Rparam s -> force_param rt s
    | Rlocal i -> (
      match frame.cells.(i) with
      | None -> trap "variable %s local to %s referenced out of scope" name frame.pname
      | Some (Value.Scalar sr) -> !sr
      | Some (Value.Real_array _ | Value.Int_array _ | Value.Log_array _) ->
        trap "whole array %s used as a value" name)
    | Rglobal i -> (
      match rt.rglobals.(i) with
      | Value.Scalar sr -> !sr
      | Value.Real_array _ | Value.Int_array _ | Value.Log_array _ ->
        trap "whole array %s used as a value" name))
  | Eneg { e; costs } -> (
    match eval_expr rt frame e with
    | Value.Vint i ->
      charge rt ci_flops rt.rmachine.Machine.int_op;
      Value.Vint (-i)
    | Value.Vreal (x, k) ->
      charge rt ci_flops costs.((rt.rvec * 2) + kind_idx k);
      mk_real k (-.x)
    | Value.Vlog _ | Value.Vstr _ -> trap "negation of non-numeric value")
  | Enot e -> Value.Vlog (not (as_bool (eval_expr rt frame e)))
  | Ebin { op; a; b; exempt; costs; powmul } -> eval_bin rt frame op a b exempt costs powmul
  | Earr { name; r; idx; mem } -> (
    match r with
    | Rerr m -> trap_s m
    | Rparam s ->
      ignore (force_param rt s);
      trap "array parameter %s unsupported" name
    | Rlocal i -> (
      match frame.cells.(i) with
      | None -> trap "variable %s local to %s referenced out of scope" name frame.pname
      | Some cell -> load_indexed rt frame name cell idx mem)
    | Rglobal i -> load_indexed rt frame name rt.rglobals.(i) idx mem)
  | Ecall cs -> (
    match exec_call rt frame cs with
    | Some v -> v
    | None -> trap "subroutine %s called as a function" cs.cs_name)
  | Eintr it -> eval_intr rt frame it
  | Etrap m -> trap_s m

and eval_bin rt frame op a b exempt costs powmul =
  match op with
  | Ast.And ->
    if as_bool (eval_expr rt frame a) then Value.Vlog (as_bool (eval_expr rt frame b))
    else Value.Vlog false
  | Ast.Or ->
    if as_bool (eval_expr rt frame a) then Value.Vlog true
    else Value.Vlog (as_bool (eval_expr rt frame b))
  | _ ->
    let va = eval_expr rt frame a in
    let vb = eval_expr rt frame b in
    bin_values rt op ~exempt ~costs ~powmul va vb

(* everything [eval_bin] does once both operands are values: shared with
   the compiled backend's generic lane *)
and bin_values rt op ~exempt ~costs ~powmul va vb =
  let ka = value_kind va in
    let kb = value_kind vb in
    (match ka, kb with
    | Some k1, Some k2 when k1 <> k2 ->
      if not exempt then charge rt ci_convert rt.rconv.(rt.rvec)
    | _ -> ());
    (match va, vb, op with
    | Value.Vint x, Value.Vint y, (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow) ->
      charge rt ci_flops rt.rmachine.Machine.int_op;
      Value.Vint
        (match op with
        | Ast.Add -> x + y
        | Ast.Sub -> x - y
        | Ast.Mul -> x * y
        | Ast.Div -> if y = 0 then trap "integer division by zero" else x / y
        | Ast.Pow ->
          if y < 0 then trap "negative integer exponent"
          else begin
            let rec pow acc n = if n = 0 then acc else pow (acc * x) (n - 1) in
            pow 1 y
          end
        | _ -> assert false)
    | _, _, (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) ->
      let k =
        match promote_kind ka kb with Some k -> k | None -> trap "numeric operands expected"
      in
      charge rt ci_flops costs.((rt.rvec * 2) + kind_idx k);
      let x = as_float va and y = as_float vb in
      mk_real k
        (match op with
        | Ast.Add -> x +. y
        | Ast.Sub -> x -. y
        | Ast.Mul -> x *. y
        | Ast.Div -> x /. y
        | _ -> assert false)
    | _, _, Ast.Pow -> (
      let k =
        match promote_kind ka kb with Some k -> k | None -> trap "numeric operands expected"
      in
      let x = as_float va in
      match vb with
      | Value.Vint n when abs n <= 4 ->
        charge rt ci_flops
          (powmul.((rt.rvec * 2) + kind_idx k) *. float_of_int (max 1 (abs n - 1)));
        let rec pow acc i = if i = 0 then acc else pow (acc *. x) (i - 1) in
        let v = pow 1.0 (abs n) in
        mk_real k (if n < 0 then 1.0 /. v else v)
      | _ ->
        charge rt ci_flops costs.((rt.rvec * 2) + kind_idx k);
        mk_real k (Float.pow x (as_float vb)))
    | _, _, (Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) ->
      charge rt ci_flops rt.rmachine.Machine.compare_cost;
      (match va, vb with
      | Value.Vlog x, Value.Vlog y ->
        Value.Vlog
          (match op with
          | Ast.Eq -> x = y
          | Ast.Ne -> x <> y
          | _ -> trap "ordering of logicals")
      | _ ->
        let x = as_float va and y = as_float vb in
        Value.Vlog
          (match op with
          | Ast.Eq -> x = y
          | Ast.Ne -> x <> y
          | Ast.Lt -> x < y
          | Ast.Le -> x <= y
          | Ast.Gt -> x > y
          | Ast.Ge -> x >= y
          | _ -> assert false))
    | _, _, (Ast.And | Ast.Or) -> assert false)

and eval_indices rt frame (idx : expr array) =
  let n = Array.length idx in
  let rec go i acc =
    if i = n then List.rev acc
    else begin
      charge rt ci_flops rt.rmachine.Machine.int_op;
      let v = as_int (eval_expr rt frame idx.(i)) in
      go (i + 1) (v :: acc)
    end
  in
  go 0 []

and load_indexed rt frame name cell (idx : expr array) (mem : float array) =
  let indices = eval_indices rt frame idx in
  match cell with
  | Value.Real_array { kind; data; dims } ->
    charge rt ci_memory mem.((rt.rvec * 2) + kind_idx kind);
    Value.Vreal (data.(Value.offset ~name ~dims indices), kind)
  | Value.Int_array { data; dims } ->
    charge rt ci_flops rt.rmachine.Machine.int_op;
    Value.Vint (data.(Value.offset ~name ~dims indices))
  | Value.Log_array { data; dims } -> Value.Vlog (data.(Value.offset ~name ~dims indices))
  | Value.Scalar _ -> trap "scalar %s subscripted" name

and store_indexed rt frame name cell (idx : expr array) ~lit v =
  let indices = eval_indices rt frame idx in
  match cell with
  | Value.Real_array { kind; data; dims } ->
    charge rt ci_memory rt.rmemtab.((rt.rvec * 2) + kind_idx kind);
    (match value_kind v with
    | Some k when k <> kind -> if not lit then charge rt ci_convert rt.rconv.(rt.rvec)
    | _ -> ());
    let x = Fp32.of_kind kind (as_float v) in
    if not (Float.is_finite x) then
      trap "non-finite value stored to %s (real(kind=%d))" name (Token.int_of_kind kind);
    data.(Value.offset ~name ~dims indices) <- x
  | Value.Int_array { data; dims } ->
    charge rt ci_flops rt.rmachine.Machine.int_op;
    data.(Value.offset ~name ~dims indices) <- as_int v
  | Value.Log_array { data; dims } -> data.(Value.offset ~name ~dims indices) <- as_bool v
  | Value.Scalar _ -> trap "scalar %s subscripted" name

and scalar_store rt r v ~lit =
  match !r, v with
  | Value.Vreal (_, k), _ ->
    (match value_kind v with
    | Some k2 when k2 <> k -> if not lit then charge rt ci_convert rt.rconv.(rt.rvec)
    | _ -> ());
    let x = Fp32.of_kind k (as_float v) in
    if not (Float.is_finite x) then
      trap "non-finite value stored to real(kind=%d) scalar" (Token.int_of_kind k);
    r := Value.Vreal (x, k)
  | Value.Vint _, _ -> r := Value.Vint (as_int v)
  | Value.Vlog _, _ -> r := Value.Vlog (as_bool v)
  | Value.Vstr _, _ -> r := v

and eval_intr rt frame (it : intr) : Value.v =
  match it with
  | Iabs { e; costs } -> (
    match eval_expr rt frame e with
    | Value.Vint i ->
      charge rt ci_flops rt.rmachine.Machine.int_op;
      Value.Vint (abs i)
    | Value.Vreal (x, k) ->
      charge rt ci_flops costs.((rt.rvec * 2) + kind_idx k);
      mk_real k (Float.abs x)
    | Value.Vlog _ | Value.Vstr _ -> trap "abs of non-numeric value")
  | Ielem { name; fn; e; costs } -> (
    match eval_expr rt frame e with
    | Value.Vreal (x, k) ->
      charge rt ci_flops costs.((rt.rvec * 2) + kind_idx k);
      mk_real k (fn x)
    | Value.Vint _ | Value.Vlog _ | Value.Vstr _ -> trap "%s of non-real value" name)
  | Iminmax { name; args; costs } ->
    let n = Array.length args in
    let rec evals i acc =
      if i = n then List.rev acc else evals (i + 1) (eval_expr rt frame args.(i) :: acc)
    in
    let vs = evals 0 [] in
    if n < 2 then trap "%s needs at least two arguments" name;
    let kind = List.fold_left (fun acc v -> promote_kind acc (value_kind v)) None vs in
    (match kind with
    | None ->
      charge rt ci_flops rt.rmachine.Machine.int_op;
      let ints = List.map as_int vs in
      Value.Vint
        (List.fold_left (if name = "min" then min else max) (List.hd ints) (List.tl ints))
    | Some k ->
      charge rt ci_flops costs.((rt.rvec * 2) + kind_idx k);
      let fs = List.map as_float vs in
      let f =
        List.fold_left (if name = "min" then Float.min else Float.max) (List.hd fs) (List.tl fs)
      in
      mk_real k f)
  | Imod { a; b; costs } -> (
    let va = eval_expr rt frame a in
    let vb = eval_expr rt frame b in
    match va, vb with
    | Value.Vint x, Value.Vint y ->
      charge rt ci_flops rt.rmachine.Machine.int_op;
      if y = 0 then trap "mod with zero divisor" else Value.Vint (x - (x / y * y))
    | _ ->
      let k =
        match promote_kind (value_kind va) (value_kind vb) with
        | Some k -> k
        | None -> trap "mod of non-numeric"
      in
      charge rt ci_flops costs.((rt.rvec * 2) + kind_idx k);
      let x = as_float va and y = as_float vb in
      mk_real k (Float.rem x y))
  | Iatan2 { a; b; costs } -> (
    let va = eval_expr rt frame a in
    let vb = eval_expr rt frame b in
    match promote_kind (value_kind va) (value_kind vb) with
    | Some k ->
      charge rt ci_flops costs.((rt.rvec * 2) + kind_idx k);
      mk_real k (Float.atan2 (as_float va) (as_float vb))
    | None -> trap "atan2 of non-real values")
  | Isign { a; b; costs } -> (
    let x = eval_expr rt frame a in
    let y = eval_expr rt frame b in
    match promote_kind (value_kind x) (value_kind y) with
    | Some k ->
      charge rt ci_flops costs.((rt.rvec * 2) + kind_idx k);
      let m = Float.abs (as_float x) in
      mk_real k (if as_float y >= 0.0 then m else -.m)
    | None ->
      charge rt ci_flops rt.rmachine.Machine.int_op;
      let m = abs (as_int x) in
      Value.Vint (if as_int y >= 0 then m else -m))
  | Ireal { e; kind = None } ->
    let v = eval_expr rt frame e in
    (match value_kind v with
    | Some Ast.K4 | None -> ()
    | Some Ast.K8 -> charge rt ci_convert rt.rconv.(rt.rvec));
    Value.Vreal (Fp32.round (as_float v), Ast.K4)
  | Ireal { e; kind = Some kk } ->
    let v = eval_expr rt frame e in
    if value_kind v <> Some kk && value_kind v <> None then
      charge rt ci_convert rt.rconv.(rt.rvec);
    Value.Vreal (Fp32.of_kind kk (as_float v), kk)
  | Ireal_bad { e; k } ->
    ignore (eval_expr rt frame e);
    trap "real(): unsupported kind %d" k
  | Idble e ->
    let v = eval_expr rt frame e in
    if value_kind v = Some Ast.K4 then charge rt ci_convert rt.rconv.(rt.rvec);
    Value.Vreal (as_float v, Ast.K8)
  | Iicvt { which; e } ->
    charge rt ci_flops rt.rmachine.Machine.int_op;
    let x = as_float (eval_expr rt frame e) in
    Value.Vint
      (match which with
      | 0 -> int_of_float x
      | 1 -> int_of_float (Float.round x)
      | _ -> int_of_float (Float.floor x))
  | Idot { an; ar; bn; br } -> (
    (* the reference resolves both via a tuple: right-to-left *)
    let rb = resolve_g rt frame bn br in
    let ra = resolve_g rt frame an ar in
    match ra, rb with
    | ( `Cell (Value.Real_array { kind = ka; data = da; _ }),
        `Cell (Value.Real_array { kind = kb; data = db; _ }) ) ->
      let n = min (Array.length da) (Array.length db) in
      let kind = if ka = Ast.K8 || kb = Ast.K8 then Ast.K8 else Ast.K4 in
      let l = Machine.lanes rt.rmachine kind in
      charge rt ci_flops
        (2.0 *. float_of_int n *. Machine.op_cost rt.rmachine ~lanes:l kind Ast.Add);
      charge rt ci_memory (2.0 *. float_of_int n *. Machine.mem_cost rt.rmachine ~lanes:l kind);
      let s = ref 0.0 in
      for i = 0 to n - 1 do
        s := Fp32.of_kind kind (!s +. Fp32.of_kind kind (da.(i) *. db.(i)))
      done;
      mk_real kind !s
    | _ -> trap "dot_product expects two real arrays")
  | Ireduce { name; rn; r } -> (
    match resolve_g rt frame rn r with
    | `Cell (Value.Real_array { kind; data; _ }) -> (
      let n = Array.length data in
      let l = Machine.lanes rt.rmachine kind in
      charge rt ci_flops (float_of_int n *. Machine.op_cost rt.rmachine ~lanes:l kind Ast.Add);
      charge rt ci_memory (float_of_int n *. Machine.mem_cost rt.rmachine ~lanes:l kind);
      match name with
      | "sum" ->
        let s = ref 0.0 in
        Array.iter (fun x -> s := Fp32.of_kind kind (!s +. x)) data;
        mk_real kind !s
      | "maxval" ->
        if n = 0 then trap "maxval of empty array"
        else mk_real kind (Array.fold_left Float.max data.(0) data)
      | "minval" ->
        if n = 0 then trap "minval of empty array"
        else mk_real kind (Array.fold_left Float.min data.(0) data)
      | _ -> assert false)
    | `Cell (Value.Int_array { data; _ }) -> (
      charge rt ci_flops (float_of_int (Array.length data) *. rt.rmachine.Machine.int_op);
      match name with
      | "sum" -> Value.Vint (Array.fold_left ( + ) 0 data)
      | "maxval" -> Value.Vint (Array.fold_left max min_int data)
      | "minval" -> Value.Vint (Array.fold_left min max_int data)
      | _ -> assert false)
    | `Cell (Value.Scalar _ | Value.Log_array _) | `Param _ -> trap "%s of non-array" name)
  | Isize { rn; r; dim = None } -> (
    match resolve_g rt frame rn r with
    | `Cell (Value.Real_array { dims; _ })
    | `Cell (Value.Int_array { dims; _ })
    | `Cell (Value.Log_array { dims; _ }) ->
      Value.Vint (Value.elements dims)
    | `Cell (Value.Scalar _) | `Param _ -> trap "size of non-array")
  | Isize { rn; r; dim = Some d } -> (
    let dim = as_int (eval_expr rt frame d) in
    match resolve_g rt frame rn r with
    | `Cell (Value.Real_array { dims; _ })
    | `Cell (Value.Int_array { dims; _ })
    | `Cell (Value.Log_array { dims; _ }) ->
      if dim >= 1 && dim <= Array.length dims then Value.Vint dims.(dim - 1)
      else trap "size: dimension %d out of range" dim
    | `Cell (Value.Scalar _) | `Param _ -> trap "size of non-array")
  | Iinq { name; e } -> (
    match eval_expr rt frame e with
    | Value.Vreal (_, k) ->
      let v =
        match name, k with
        | "epsilon", Ast.K8 -> epsilon_float
        | "epsilon", Ast.K4 -> 1.1920928955078125e-07
        | "huge", Ast.K8 -> max_float
        | "huge", Ast.K4 -> Fp32.max_finite
        | "tiny", Ast.K8 -> min_float
        | "tiny", Ast.K4 -> Fp32.min_positive_normal
        | _ -> assert false
      in
      Value.Vreal (v, k)
    | Value.Vint _ | Value.Vlog _ | Value.Vstr _ -> trap "%s of non-real value" name)

and exec_call rt frame (cs : call_site) : Value.v option =
  if cs.cs_callee = -1 then
    (* unknown procedure: the reference traps before the depth increment *)
    trap_s (match cs.cs_arity_trap with Some m -> m | None -> assert false);
  let name = cs.cs_name in
  rt.rdepth <- rt.rdepth + 1;
  if rt.rdepth > 200 then trap "call depth limit exceeded at %s" name;
  check_budget rt;
  (match cs.cs_arity_trap with Some m -> trap_s m | None -> ());
  let pidx = frame.flinks.(cs.cs_callee) in
  let ir = rt.rprocs.(pidx) in
  let cells = Array.make ir.p_nslots None in
  let copy_out = ref [] in
  let nargs = Array.length cs.cs_args in
  for i = 0 to nargs - 1 do
    let d = ir.p_dummies.(i) in
    if d.d_undeclared then trap "dummy %s of %s undeclared" d.d_name name;
    match cs.cs_args.(i) with
    | Aref { name = a; r } -> bind_arg_ref rt frame cells ~callee:name ~d a r
    | Aval { e; lit; co } ->
      if d.d_is_array then
        trap "array dummy %s of %s requires a whole-array actual argument" d.d_name name
      else begin
        let v = eval_expr rt frame e in
        bind_by_value rt cells ~callee:name ~d ~lit v;
        match co with
        | Some c when d.d_writable -> copy_out := (c, d.d_slot) :: !copy_out
        | Some _ | None -> ()
      end
  done;
  let callee = { pname = ir.p_name; cells; flinks = rt.rlinks.(pidx) } in
  Array.iter
    (fun (l : local) ->
      let nd = Array.length l.l_dims in
      let rec dims i acc =
        if i = nd then List.rev acc
        else dims (i + 1) (as_int (eval_expr rt callee l.l_dims.(i)) :: acc)
      in
      cells.(l.l_slot) <- Some (alloc_cell l.l_base (dims 0 [])))
    ir.p_locals;
  Array.iter
    (fun (it : initr) ->
      let v = eval_expr rt callee it.i_rhs in
      match cells.(it.i_slot) with
      | Some (Value.Scalar r) -> scalar_store rt r v ~lit:it.i_lit
      | Some _ | None -> trap "initializer on array %s unsupported" it.i_name)
    ir.p_inits;
  let is_wrapper = ir.p_is_wrapper in
  let inl = (not is_wrapper) && (not rt.rin_wrapper) && ir.p_inlinable in
  if not is_wrapper then
    Timers.enter_acc rt.rtimers (proc_acc rt pidx ir.p_name) ir.p_name ~now:rt.rcost.fv;
  if not inl then begin
    charge rt ci_call rt.rmachine.Machine.call_overhead;
    if is_wrapper then charge rt ci_call rt.rmachine.Machine.wrapper_overhead
  end;
  let saved_vec = rt.rvec in
  let saved_in_wrapper = rt.rin_wrapper in
  if not inl then rt.rvec <- 0;
  rt.rin_wrapper <- is_wrapper;
  let finish () =
    if not is_wrapper then Timers.exit_ rt.rtimers ~now:rt.rcost.fv;
    rt.rvec <- saved_vec;
    rt.rin_wrapper <- saved_in_wrapper;
    rt.rdepth <- rt.rdepth - 1
  in
  (match exec_block rt callee ir.p_body with
  | () -> ()
  | exception Rreturn -> ()
  | exception e ->
    finish ();
    raise e);
  finish ();
  List.iter
    (fun ((c : copy_out), slot) ->
      match cells.(slot) with
      | Some (Value.Scalar r) -> (
        match resolve_g rt frame c.co_name c.co_r with
        | `Cell cell -> store_indexed rt frame c.co_name cell c.co_idx ~lit:false !r
        | `Param _ -> ())
      | Some _ | None -> ())
    !copy_out;
  if not ir.p_is_function then None
  else if ir.p_result = -2 then trap "function %s has no result cell" name
  else (
    match cells.(ir.p_result) with
    | Some (Value.Scalar r) -> Some !r
    | Some _ -> trap "array-valued function %s unsupported" name
    | None -> trap "function %s has no result cell" name)

(* bind a whole-variable actual [a] (resolved through [r]) to dummy [d] of
   [callee]: by reference when the kinds line up, trapping with the same
   messages as the tree-walker otherwise. Shared with the compiled backend. *)
and bind_arg_ref rt frame cells ~callee:name ~(d : dummy) a r =
  if d.d_is_array then (
    match resolve_g rt frame a r with
    | `Cell (Value.Real_array { kind; _ } as cell) -> (
      match d.d_base with
      | Ast.Treal dk when dk = kind -> cells.(d.d_slot) <- Some cell
      | Ast.Treal dk ->
        trap
          "argument %s of %s: real(kind=%d) array passed to real(kind=%d) dummy %s — \
           wrapper required"
          a name (Token.int_of_kind kind) (Token.int_of_kind dk) d.d_name
      | Ast.Tinteger | Ast.Tlogical -> trap "array type mismatch for %s of %s" d.d_name name)
    | `Cell (Value.Int_array _ as cell) -> (
      match d.d_base with
      | Ast.Tinteger -> cells.(d.d_slot) <- Some cell
      | Ast.Treal _ | Ast.Tlogical -> trap "array type mismatch for %s of %s" d.d_name name)
    | `Cell (Value.Log_array _ as cell) -> (
      match d.d_base with
      | Ast.Tlogical -> cells.(d.d_slot) <- Some cell
      | Ast.Treal _ | Ast.Tinteger -> trap "array type mismatch for %s of %s" d.d_name name)
    | `Cell (Value.Scalar _) -> trap "scalar %s passed to array dummy %s of %s" a d.d_name name
    | `Param _ -> trap "parameter %s passed to array dummy" a)
  else (
    match resolve_g rt frame a r with
    | `Cell (Value.Scalar sr as cell) -> (
      match !sr, d.d_base with
      | Value.Vreal (_, ak), Ast.Treal dk ->
        if ak = dk then cells.(d.d_slot) <- Some cell
        else
          trap
            "argument %s of %s: real(kind=%d) passed to real(kind=%d) dummy %s — wrapper \
             required"
            a name (Token.int_of_kind ak) (Token.int_of_kind dk) d.d_name
      | Value.Vint _, Ast.Tinteger | Value.Vlog _, Ast.Tlogical ->
        cells.(d.d_slot) <- Some cell
      | _ -> trap "type mismatch binding %s to dummy %s of %s" a d.d_name name)
    | `Param v -> bind_by_value rt cells ~callee:name ~d ~lit:false v
    | `Cell (Value.Real_array _ | Value.Int_array _ | Value.Log_array _) ->
      trap "array %s passed to scalar dummy %s of %s" a d.d_name name)

and bind_by_value rt cells ~callee ~(d : dummy) ~lit v =
  ignore rt;
  match d.d_base, v with
  | Ast.Treal dk, Value.Vreal (_, ak) ->
    if ak <> dk then begin
      if lit then
        (* literal kind conversions fold at compile time *)
        cells.(d.d_slot) <-
          Some (Value.Scalar (ref (Value.Vreal (Fp32.of_kind dk (as_float v), dk))))
      else
        trap
          "argument %d-ish of %s: real(kind=%d) value passed to real(kind=%d) dummy %s — \
           wrapper required"
          0 callee (Token.int_of_kind ak) (Token.int_of_kind dk) d.d_name
    end
    else cells.(d.d_slot) <- Some (Value.Scalar (ref v))
  | Ast.Treal dk, Value.Vint i ->
    cells.(d.d_slot) <-
      Some (Value.Scalar (ref (Value.Vreal (Fp32.of_kind dk (float_of_int i), dk))))
  | Ast.Tinteger, Value.Vint _ | Ast.Tlogical, Value.Vlog _ ->
    cells.(d.d_slot) <- Some (Value.Scalar (ref v))
  | _ -> trap "type mismatch binding value to dummy %s of %s" d.d_name callee

and exec_block rt frame (blk : stmt array) = Array.iter (exec_stmt rt frame) blk

and exec_stmt rt frame (s : stmt) =
  match s with
  | Sassign { tgt; rhs } -> (
    let v = eval_expr rt frame rhs in
    match tgt with
    | Lsc { name; r; rhs_lit } -> (
      match resolve_g rt frame name r with
      | `Cell (Value.Scalar sr) -> scalar_store rt sr v ~lit:rhs_lit
      | `Cell (Value.Real_array _ | Value.Int_array _ | Value.Log_array _) ->
        trap "assignment to whole array %s unsupported" name
      | `Param _ -> trap "assignment to parameter %s" name)
    | Larr { name; r; idx; rhs_lit } -> (
      match resolve_g rt frame name r with
      | `Cell cell -> store_indexed rt frame name cell idx ~lit:rhs_lit v
      | `Param _ -> trap "assignment to parameter %s" name))
  | Scall cs -> ignore (exec_call rt frame cs)
  | Sallreduce { send; send_lit; rn; recv; op } ->
    let v = eval_expr rt frame send in
    charge rt ci_reduction rt.rmachine.Machine.allreduce;
    (match op with
    | "sum" | "max" | "min" -> ()
    | _ -> trap "mpi_allreduce: unknown op %s" op);
    let r = scalar_ref rt frame rn recv in
    scalar_store rt r v ~lit:send_lit
  | Sbarrier -> charge rt ci_reduction (rt.rmachine.Machine.allreduce /. 2.0)
  | Sif { arms; els } ->
    let rec go i =
      if i = Array.length arms then exec_block rt frame els
      else
        let cond, blk = arms.(i) in
        if as_bool (eval_expr rt frame cond) then exec_block rt frame blk else go (i + 1)
    in
    go 0
  | Sdo { vn; var; from_; to_; step; mode; iter_overhead; body } ->
    let r = scalar_ref rt frame vn var in
    let lo = as_int (eval_expr rt frame from_) in
    let hi = as_int (eval_expr rt frame to_) in
    let stp = match step with Some e -> as_int (eval_expr rt frame e) | None -> 1 in
    if stp = 0 then trap "do loop with zero step";
    let saved_vec = rt.rvec in
    rt.rvec <- mode_idx mode;
    let restore () = rt.rvec <- saved_vec in
    (try
       let i = ref lo in
       while (stp > 0 && !i <= hi) || (stp < 0 && !i >= hi) do
         r := Value.Vint !i;
         charge rt ci_loop iter_overhead;
         check_budget rt;
         (try exec_block rt frame body with Rcycle -> ());
         i := !i + stp
       done
     with
    | Rexit -> ()
    | e ->
      restore ();
      raise e);
    restore ()
  | Sdo_while { cond; body } -> (
    try
      while as_bool (eval_expr rt frame cond) do
        charge rt ci_loop rt.rmachine.Machine.loop_overhead;
        check_budget rt;
        try exec_block rt frame body with Rcycle -> ()
      done
    with Rexit -> ())
  | Sselect { selector; arms; default } ->
    let sel = eval_expr rt frame selector in
    charge rt ci_flops rt.rmachine.Machine.compare_cost;
    let matches item =
      match item, sel with
      | Cval v, _ -> (
        match eval_expr rt frame v, sel with
        | Value.Vint a, Value.Vint b -> a = b
        | Value.Vlog a, Value.Vlog b -> a = b
        | _ -> trap "case value incompatible with selector")
      | Crange (lo, hi), Value.Vint x ->
        let above = match lo with Some e -> x >= as_int (eval_expr rt frame e) | None -> true in
        let below = match hi with Some e -> x <= as_int (eval_expr rt frame e) | None -> true in
        above && below
      | Crange _, _ -> trap "case range requires an integer selector"
    in
    let rec go i =
      if i = Array.length arms then exec_block rt frame default
      else
        let items, blk = arms.(i) in
        if Array.exists matches items then exec_block rt frame blk else go (i + 1)
    in
    go 0
  | Sexit -> raise Rexit
  | Scycle -> raise Rcycle
  | Sreturn -> raise Rreturn
  | Sstop m -> raise (Rstop m)
  | Sprint args ->
    let n = Array.length args in
    let vs = Array.make n (Value.Vint 0) in
    for i = 0 to n - 1 do
      vs.(i) <- eval_expr rt frame args.(i)
    done;
    let line = String.concat " " (List.map Value.to_string (Array.to_list vs)) in
    rt.rprinted <- line :: rt.rprinted;
    if n > 0 then (
      match vs.(0) with
      | Value.Vstr key ->
        for i = 1 to n - 1 do
          match vs.(i) with
          | Value.Vreal (x, _) -> rt.rrecords <- (key, x) :: rt.rrecords
          | Value.Vint iv -> rt.rrecords <- (key, float_of_int iv) :: rt.rrecords
          | Value.Vlog _ | Value.Vstr _ -> ()
        done
      | _ -> ())
  | Strap m -> trap_s m

(* ------------------------------------------------------------------ *)
(* Program entry                                                       *)

let prepare_globals rt (p : program) =
  let n = Array.length p.globals in
  for i = 0 to n - 1 do
    let g = p.globals.(i) in
    match g.g_extents with
    | None -> trap "module array %s.%s has non-constant extent" g.g_unit g.g_name
    | Some ext -> rt.rglobals.(g.g_slot) <- alloc_cell g.g_base (Array.to_list ext)
  done;
  for i = 0 to n - 1 do
    let g = p.globals.(i) in
    match g.g_init with
    | Some (e, lit) -> (
      let frame = { pname = ""; cells = [||]; flinks = p.aux_links } in
      let v = eval_expr rt frame e in
      match rt.rglobals.(g.g_slot) with
      | Value.Scalar r -> scalar_store rt r v ~lit
      | Value.Real_array _ | Value.Int_array _ | Value.Log_array _ ->
        trap "initializer on module array %s unsupported" g.g_name)
    | None -> ()
  done

let fresh_rctx ?budget (p : program) : rctx =
  {
    rprocs = p.procs;
    rlinks = p.links;
    raux = p.aux_links;
    rmachine = p.machine;
    rtimers = Timers.create ();
    raccs = Array.make (Array.length p.procs) None;
    rcost = { fv = 0.0 };
    rbudget = (match budget with Some b -> b | None -> Float.infinity);
    rglobals = Array.make p.nglobals (Value.Scalar (ref (Value.Vint 0)));
    rparams = Array.make (Array.length p.params) None;
    rparam_defs = p.params;
    rconv = p.conv_costs;
    rmemtab = table6 p.machine (fun lanes k -> Machine.mem_cost p.machine ~lanes k);
    rvec = 0;
    rrecords = [];
    rprinted = [];
    rdepth = 0;
    rcharging = true;
    rin_wrapper = false;
    rbreakdown = Array.make (List.length Machine.categories) 0.0;
  }

(* shared entry/exit protocol of both evaluation backends: globals,
   the main timer bracket, status classification, outcome assembly.
   [exec] runs the main body with whatever execution engine the caller
   chose; charges and records accumulate in [rt]. *)
let run_with rt (p : program) ~exec : Interp.outcome =
  let status =
    match
      prepare_globals rt p;
      if not p.has_main then trap "program has no main unit";
      Timers.enter rt.rtimers "<main>" ~now:rt.rcost.fv;
      (try exec ()
       with e ->
         Timers.exit_ rt.rtimers ~now:rt.rcost.fv;
         raise e);
      Timers.exit_ rt.rtimers ~now:rt.rcost.fv
    with
    | () -> Interp.Finished
    | exception Rstop m -> Interp.Stopped m
    | exception Rtrap m -> Interp.Runtime_error m
    | exception Value.Bounds m -> Interp.Runtime_error m
    | exception Rtimeout -> Interp.Timed_out
    | exception Rreturn -> Interp.Finished
    | exception Rexit -> Interp.Runtime_error "exit outside a loop"
    | exception Rcycle -> Interp.Runtime_error "cycle outside a loop"
  in
  {
    Interp.status;
    cost = rt.rcost.fv;
    timers = Timers.snapshot rt.rtimers;
    records = List.rev rt.rrecords;
    printed = List.rev rt.rprinted;
    breakdown = List.mapi (fun i c -> (c, rt.rbreakdown.(i))) Machine.categories;
  }

let run ?budget (p : program) : Interp.outcome =
  let rt = fresh_rctx ?budget p in
  run_with rt p ~exec:(fun () ->
      let frame = { pname = ""; cells = [||]; flinks = p.main_links } in
      exec_block rt frame p.main_body)
