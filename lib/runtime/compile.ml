(* Closure-compilation backend over the [Lower] IR.

   [Lower]'s evaluator still pattern-matches on IR opcodes at every node
   visit. This pass translates each lowered procedure ONCE into a tree of
   OCaml closures: expressions become [cctx -> rframe -> float/int/bool/
   value] functions with slots, cost sub-tables and static typing
   decisions pre-bound, statements become [cctx -> rframe -> unit]. The
   per-evaluation inner loop then runs no dispatch at all — only the
   closures the program shape already determined.

   Observable behavior is bit-identical to [Lower.run] (and therefore to
   [Interp.run]): every charge in the same order, every trap message,
   every timer bracket. Two mechanisms guarantee that:

   - Typed lanes are used only where the declared base type pins the
     runtime representation. Cell tags always match declarations: cells
     are allocated from declared bases, [scalar_store] preserves the
     current tag, and by-reference argument binding traps on any kind
     mismatch. A slot declared real(k) therefore always holds
     [Vreal (_, k)], and the compiled float lane is exact.
   - Anything not statically typable falls back to the generic lane,
     which is [Lower.eval_expr] / [Lower.exec_stmt] on the original node
     — the interpreter itself, bit-identical by construction. Cold paths
     (parameter forcing, global initialization, copy-out stores) stay
     interpreted.

   Compiled procedures are cacheable across variants under the same key
   as [Lower.Cache] ([proc_ir.p_key]): closures never bake procedure
   indices (callees resolve through [rframe.flinks] at runtime), and
   every static decision they do bake — cost sub-tables aside from the
   machine, slot types, callee result types — is a function of the
   declarations that key signs. *)

open Fortran
open Lower

(* static type of a slot, derived from its declaration *)
type sty =
  | Sreal of Ast.real_kind
  | Sint
  | Sbool
  | Sarr of Ast.base_type
  | Sunknown

let sty_of_base (b : Ast.base_type) ~is_array =
  if is_array then Sarr b
  else
    match b with
    | Ast.Treal k -> Sreal k
    | Ast.Tinteger -> Sint
    | Ast.Tlogical -> Sbool

(* ------------------------------------------------------------------ *)
(* Compiled forms                                                      *)

type cctx = { rt : rctx; cprocs : cproc array; scratch : fbox }

and cproc = {
  ir : proc_ir;
  cbody : cstmt array;
  clocals : clocal array;
  cinits : cinit array;
}

and cstmt = cctx -> rframe -> unit
and clocal = { cl_def : local; cl_dims : (cctx -> rframe -> int) array }
and cinit = { cin_def : initr; cin_rhs : cctx -> rframe -> Value.v }

type ccall = {
  cc : call_site;  (* names, callee index and arity trap *)
  cc_args : carg array;
}

and carg =
  | CAref of { a : string; ar : ref_ }
  | CAval of { cv : cctx -> rframe -> Value.v; lit : bool; co : ccopy option }

(* a copy-out destination with its subscripts precompiled: the write-back
   after the call then runs on the compiled store path instead of
   re-interpreting the index expressions *)
and ccopy = { cco : copy_out; cco_idx : (cctx -> rframe -> int) array }

(* an expression compiles into one of four lanes; the typed lanes carry
   unboxed results and are used only when the static type is certain.
   The float lane does NOT return its result: an indirect OCaml call
   returning [float] boxes on every return, so a float closure instead
   writes [ct.scratch.fv] (a flat store) as its final action and the
   consumer reads it back immediately — a return register, in effect.
   Reads must happen before any further evaluation, since nested
   compiled code reuses the same scratch cell. *)
type cexpr =
  | Kf of (cctx -> rframe -> unit) * Ast.real_kind  (* result in scratch *)
  | Ki of (cctx -> rframe -> int)
  | Kb of (cctx -> rframe -> bool)
  | Kv of (cctx -> rframe -> Value.v)

(* ------------------------------------------------------------------ *)
(* Lane views. Conversions mirror [as_float]/[as_int]/[as_bool]: the
   operand is always evaluated (with its charges) before any trap.      *)

let force = function
  | Kf (f, k) ->
    fun ct fr ->
      f ct fr;
      Value.Vreal (ct.scratch.fv, k)
  | Ki f -> fun ct fr -> Value.Vint (f ct fr)
  | Kb f -> fun ct fr -> Value.Vlog (f ct fr)
  | Kv f -> f

(* float view: evaluate and leave the float in [ct.scratch.fv] *)
let fput = function
  | Kf (f, _) -> f
  | Ki f -> fun ct fr -> ct.scratch.fv <- float_of_int (f ct fr)
  | Kb f ->
    fun ct fr ->
      ignore (f ct fr : bool);
      trap_s "numeric value expected"
  | Kv f -> fun ct fr -> ct.scratch.fv <- as_float (f ct fr)

let iview = function
  | Ki f -> f
  | Kf (f, _) ->
    fun ct fr ->
      f ct fr;
      int_of_float ct.scratch.fv
  | Kb f ->
    fun ct fr ->
      ignore (f ct fr : bool);
      trap_s "integer value expected"
  | Kv f -> fun ct fr -> as_int (f ct fr)

let bview = function
  | Kb f -> f
  | Kf (f, _) ->
    fun ct fr ->
      f ct fr;
      trap_s "logical value expected"
  | Ki f ->
    fun ct fr ->
      ignore (f ct fr : int);
      trap_s "logical value expected"
  | Kv f -> fun ct fr -> as_bool (f ct fr)

(* Shadow [Lower.charge]/[Lower.check_budget] with same-module copies of
   the same bodies: charging runs once per modeled operation, and a
   cross-module call that fails to inline boxes the float cost argument
   each time. The timers update is [Timers.charge] spelled out. *)
let[@inline] charge rt i c =
  if rt.rcharging then begin
    rt.rcost.fv <- rt.rcost.fv +. c;
    (* [i] is always one of the [ci_*] constants, all below the
       breakdown array's fixed length — skip the bounds check *)
    Array.unsafe_set rt.rbreakdown i (Array.unsafe_get rt.rbreakdown i +. c);
    let tm = rt.rtimers in
    tm.Timers.top.Timers.exclusive <- tm.Timers.top.Timers.exclusive +. c
  end

let[@inline] check_budget rt = if rt.rcost.fv > rt.rbudget then raise Rtimeout

(* cost sub-table for a statically-known kind: indexed by [rt.rvec] *)
let sub3 costs k =
  let ki = kind_idx k in
  [| costs.(ki); costs.(2 + ki); costs.(4 + ki) |]

(* [eval_indices] compiled: int_op charged before each index evaluates *)
let eval_cidx (cidx : (cctx -> rframe -> int) array) ct fr : int array =
  let rt = ct.rt in
  let n = Array.length cidx in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    charge rt ci_flops rt.rmachine.Machine.int_op;
    out.(i) <- cidx.(i) ct fr
  done;
  out

(* [Value.offset] on an int array: same checks, same messages *)
let offset_arr ~name ~dims (idx : int array) =
  let rank = Array.length dims in
  if Array.length idx <> rank then
    raise
      (Value.Bounds
         (Printf.sprintf "%s: rank %d but %d subscripts" name rank (Array.length idx)));
  let off = ref 0 in
  let stride = ref 1 in
  for d = 0 to rank - 1 do
    let i = idx.(d) in
    if i < 1 || i > dims.(d) then
      raise
        (Value.Bounds
           (Printf.sprintf "%s: subscript %d of dimension %d out of range [1,%d]" name i (d + 1)
              dims.(d)));
    off := !off + ((i - 1) * !stride);
    stride := !stride * dims.(d)
  done;
  !off

(* kept as a direct call so the floats never box: an indirect arithmetic
   closure would box both arguments and the result on every operation *)
let[@inline] arith4 op (x : float) (y : float) =
  match op with
  | Ast.Add -> x +. y
  | Ast.Sub -> x -. y
  | Ast.Mul -> x *. y
  | Ast.Div -> x /. y
  | _ -> assert false

let iarith op x y =
  match op with
  | Ast.Add -> x + y
  | Ast.Sub -> x - y
  | Ast.Mul -> x * y
  | Ast.Div -> if y = 0 then trap "integer division by zero" else x / y
  | Ast.Pow ->
    if y < 0 then trap "negative integer exponent"
    else begin
      let rec pow acc n = if n = 0 then acc else pow (acc * x) (n - 1) in
      pow 1 y
    end
  | _ -> assert false

(* Local clones of [Fp32.round]/[Fp32.of_kind]/[Lower.mk_realf]: those
   are tiny, but a cross-module call that fails to inline boxes its
   float argument and result on the hottest paths here. The bit-level
   computation is identical (same externals, same checks); the cold trap
   path defers to [mk_realf], which recomputes and raises the same
   message. *)
let[@inline] round32 x = Int32.float_of_bits (Int32.bits_of_float x)

let[@inline] cround (k : Ast.real_kind) x =
  match k with
  | Ast.K4 -> round32 x
  | Ast.K8 -> x

let[@inline] cmk_realf k x =
  let y = cround k x in
  if Float.is_finite y then y else mk_realf k x

(* small-exponent x**n as the same left-associated chain the generic
   loop produces (so bit-identical), but inlined: a local recursive
   helper would allocate its closure and box the accumulator on every
   call *)
let[@inline] ipow4 (x : float) (n : int) =
  match n with
  | 0 -> 1.0
  | 1 -> 1.0 *. x
  | 2 -> 1.0 *. x *. x
  | 3 -> 1.0 *. x *. x *. x
  | _ -> 1.0 *. x *. x *. x *. x

(* [Vint] blocks are immutable, so the small values every loop counter
   passes through can be shared instead of freshly boxed per iteration *)
let vint_cache = Array.init 4097 (fun i -> Value.Vint i)

let[@inline] vint i = if i >= 0 && i <= 4096 then vint_cache.(i) else Value.Vint i

(* [offset_arr] specialized to one subscript — most accesses in the
   models are rank-1, and the generic path pays an index-array
   allocation per access. Same checks, same messages. *)
let[@inline] offset1 ~name ~(dims : int array) i =
  if Array.length dims <> 1 then
    raise
      (Value.Bounds (Printf.sprintf "%s: rank %d but %d subscripts" name (Array.length dims) 1));
  if i < 1 || i > dims.(0) then
    raise
      (Value.Bounds
         (Printf.sprintf "%s: subscript %d of dimension %d out of range [1,%d]" name i 1 dims.(0)));
  i - 1

(* ... and to two subscripts (column-model arrays): same checks in the
   same order as [offset_arr]'s loop *)
let[@inline] offset2 ~name ~(dims : int array) i j =
  if Array.length dims <> 2 then
    raise
      (Value.Bounds (Printf.sprintf "%s: rank %d but %d subscripts" name (Array.length dims) 2));
  if i < 1 || i > dims.(0) then
    raise
      (Value.Bounds
         (Printf.sprintf "%s: subscript %d of dimension %d out of range [1,%d]" name i 1 dims.(0)));
  if j < 1 || j > dims.(1) then
    raise
      (Value.Bounds
         (Printf.sprintf "%s: subscript %d of dimension %d out of range [1,%d]" name j 2 dims.(1)));
  i - 1 + ((j - 1) * dims.(0))

let[@inline] cmp_fn op (x : float) (y : float) =
  match op with
  | Ast.Eq -> x = y
  | Ast.Ne -> x <> y
  | Ast.Lt -> x < y
  | Ast.Le -> x <= y
  | Ast.Gt -> x > y
  | Ast.Ge -> x >= y
  | _ -> assert false

(* indexed store with compiled index closures — [store_indexed]'s
   semantics (same checks, charges and messages), reached from both
   compiled assignments and the compiled copy-out path *)
let cstore ct fr name cell cidx ~lit v =
  if Array.length cidx = 1 then begin
    (* rank-1: same charge order as [eval_cidx] + the generic arms,
       minus the index-array allocation *)
    let rt = ct.rt in
    charge rt ci_flops rt.rmachine.Machine.int_op;
    let i = cidx.(0) ct fr in
    match cell with
    | Value.Real_array { kind; data; dims } ->
      charge rt ci_memory rt.rmemtab.((rt.rvec * 2) + kind_idx kind);
      (match value_kind v with
      | Some k when k <> kind -> if not lit then charge rt ci_convert rt.rconv.(rt.rvec)
      | _ -> ());
      let x = cround kind (as_float v) in
      if not (Float.is_finite x) then
        trap "non-finite value stored to %s (real(kind=%d))" name (Token.int_of_kind kind);
      data.(offset1 ~name ~dims i) <- x
    | Value.Int_array { data; dims } ->
      charge rt ci_flops rt.rmachine.Machine.int_op;
      data.(offset1 ~name ~dims i) <- as_int v
    | Value.Log_array { data; dims } -> data.(offset1 ~name ~dims i) <- as_bool v
    | Value.Scalar _ -> trap "scalar %s subscripted" name
  end
  else
  let rt = ct.rt in
  let ix = eval_cidx cidx ct fr in
  match cell with
  | Value.Real_array { kind; data; dims } ->
    charge rt ci_memory rt.rmemtab.((rt.rvec * 2) + kind_idx kind);
    (match value_kind v with
    | Some k when k <> kind -> if not lit then charge rt ci_convert rt.rconv.(rt.rvec)
    | _ -> ());
    let x = cround kind (as_float v) in
    if not (Float.is_finite x) then
      trap "non-finite value stored to %s (real(kind=%d))" name (Token.int_of_kind kind);
    data.(offset_arr ~name ~dims ix) <- x
  | Value.Int_array { data; dims } ->
    charge rt ci_flops rt.rmachine.Machine.int_op;
    data.(offset_arr ~name ~dims ix) <- as_int v
  | Value.Log_array { data; dims } -> data.(offset_arr ~name ~dims ix) <- as_bool v
  | Value.Scalar _ -> trap "scalar %s subscripted" name

(* ------------------------------------------------------------------ *)
(* Compiled call protocol — [Lower.exec_call] transcribed, with the
   argument-binding and result rules shared via [bind_arg_ref] /
   [bind_by_value], and the callee resolved through [flinks] at runtime
   so compiled procedures stay cacheable across variants.               *)

(* a [for] rather than [Array.iter]: the iter closure would capture
   [ct]/[fr] and so allocate on every block execution — once per loop
   iteration in the models' innermost loops *)
let exec_cblock ct fr (blk : cstmt array) =
  for i = 0 to Array.length blk - 1 do
    blk.(i) ct fr
  done

let rec copy_back ct fr cells = function
  | [] -> ()
  | ((cc : ccopy), slot) :: rest ->
    (match cells.(slot) with
    | Some (Value.Scalar r) -> (
      match resolve_g ct.rt fr cc.cco.co_name cc.cco.co_r with
      | `Cell cell -> cstore ct fr cc.cco.co_name cell cc.cco_idx ~lit:false !r
      | `Param _ -> ())
    | Some _ | None -> ());
    copy_back ct fr cells rest

let rec cdims_from (cl : clocal) ct callee i acc =
  if i = Array.length cl.cl_dims then List.rev acc
  else cdims_from cl ct callee (i + 1) (cl.cl_dims.(i) ct callee :: acc)

let[@inline] cdims cl ct callee = cdims_from cl ct callee 0 []

let exec_ccall ct fr (ca : ccall) : Value.v option =
  let rt = ct.rt in
  let cs = ca.cc in
  if cs.cs_callee = -1 then
    (* unknown procedure: the reference traps before the depth increment *)
    trap_s (match cs.cs_arity_trap with Some m -> m | None -> assert false);
  let name = cs.cs_name in
  rt.rdepth <- rt.rdepth + 1;
  if rt.rdepth > 200 then trap "call depth limit exceeded at %s" name;
  check_budget rt;
  (match cs.cs_arity_trap with Some m -> trap_s m | None -> ());
  let pidx = fr.flinks.(cs.cs_callee) in
  let cp = ct.cprocs.(pidx) in
  let ir = cp.ir in
  let cells = Array.make ir.p_nslots None in
  let copy_out = ref [] in
  let nargs = Array.length ca.cc_args in
  for i = 0 to nargs - 1 do
    let d = ir.p_dummies.(i) in
    if d.d_undeclared then trap "dummy %s of %s undeclared" d.d_name name;
    match ca.cc_args.(i) with
    | CAref { a; ar } -> bind_arg_ref rt fr cells ~callee:name ~d a ar
    | CAval { cv; lit; co } ->
      if d.d_is_array then
        trap "array dummy %s of %s requires a whole-array actual argument" d.d_name name
      else begin
        let v = cv ct fr in
        bind_by_value rt cells ~callee:name ~d ~lit v;
        match co with
        | Some c when d.d_writable -> copy_out := (c, d.d_slot) :: !copy_out
        | Some _ | None -> ()
      end
  done;
  let callee = { pname = ir.p_name; cells; flinks = rt.rlinks.(pidx) } in
  (* plain [for] loops below: [Array.iter]/[List.iter] thunks would
     capture [ct]/[callee] and allocate on every call *)
  for li = 0 to Array.length cp.clocals - 1 do
    let cl = cp.clocals.(li) in
    cells.(cl.cl_def.l_slot) <- Some (alloc_cell cl.cl_def.l_base (cdims cl ct callee))
  done;
  for ii = 0 to Array.length cp.cinits - 1 do
    let ci = cp.cinits.(ii) in
    let v = ci.cin_rhs ct callee in
    match cells.(ci.cin_def.i_slot) with
    | Some (Value.Scalar r) -> scalar_store rt r v ~lit:ci.cin_def.i_lit
    | Some _ | None -> trap "initializer on array %s unsupported" ci.cin_def.i_name
  done;
  let is_wrapper = ir.p_is_wrapper in
  let inl = (not is_wrapper) && (not rt.rin_wrapper) && ir.p_inlinable in
  if not is_wrapper then
    Timers.enter_acc rt.rtimers (proc_acc rt pidx ir.p_name) ir.p_name ~now:rt.rcost.fv;
  if not inl then begin
    charge rt ci_call rt.rmachine.Machine.call_overhead;
    if is_wrapper then charge rt ci_call rt.rmachine.Machine.wrapper_overhead
  end;
  let saved_vec = rt.rvec in
  let saved_in_wrapper = rt.rin_wrapper in
  if not inl then rt.rvec <- 0;
  rt.rin_wrapper <- is_wrapper;
  (* [finish] spelled out at both exits rather than bound to a closure:
     it would be allocated per call *)
  (match exec_cblock ct callee cp.cbody with
  | () -> ()
  | exception Rreturn -> ()
  | exception e ->
    if not is_wrapper then Timers.exit_ rt.rtimers ~now:rt.rcost.fv;
    rt.rvec <- saved_vec;
    rt.rin_wrapper <- saved_in_wrapper;
    rt.rdepth <- rt.rdepth - 1;
    raise e);
  if not is_wrapper then Timers.exit_ rt.rtimers ~now:rt.rcost.fv;
  rt.rvec <- saved_vec;
  rt.rin_wrapper <- saved_in_wrapper;
  rt.rdepth <- rt.rdepth - 1;
  copy_back ct fr cells !copy_out;
  if not ir.p_is_function then None
  else if ir.p_result = -2 then trap "function %s has no result cell" name
  else (
    match cells.(ir.p_result) with
    | Some (Value.Scalar r) -> Some !r
    | Some _ -> trap "array-valued function %s unsupported" name
    | None -> trap "function %s has no result cell" name)

(* ------------------------------------------------------------------ *)
(* Compile-time environment                                            *)

type cenv = {
  prog : program;
  gsty : sty array;  (* by global slot *)
  psty : sty array;  (* by parameter slot *)
  fsty : sty array;  (* by frame slot of the procedure being compiled *)
  clinks : int array;  (* this body's callee index -> proc index *)
}

let sty_of_ref env = function
  | Rlocal i -> if i >= 0 && i < Array.length env.fsty then env.fsty.(i) else Sunknown
  | Rglobal i -> if i >= 0 && i < Array.length env.gsty then env.gsty.(i) else Sunknown
  | Rparam i -> if i >= 0 && i < Array.length env.psty then env.psty.(i) else Sunknown
  | Rerr _ -> Sunknown

(* result type of the function behind a call site, pinned by the cache
   key: the callee is reachable, so its scope signature signs every real
   kind this decision depends on *)
let callee_result_sty env (cs : call_site) : sty =
  if cs.cs_callee < 0 || cs.cs_callee >= Array.length env.clinks then Sunknown
  else
    match env.clinks.(cs.cs_callee) with
    | -1 -> Sunknown
    | pidx ->
      let ir = env.prog.procs.(pidx) in
      if (not ir.p_is_function) || ir.p_result < 0 then Sunknown
      else begin
        let found = ref Sunknown in
        Array.iter
          (fun (l : local) ->
            if l.l_slot = ir.p_result then
              found := sty_of_base l.l_base ~is_array:(l.l_dims <> [||]))
          ir.p_locals;
        Array.iter
          (fun (d : dummy) ->
            if (not d.d_undeclared) && d.d_slot = ir.p_result then
              found := sty_of_base d.d_base ~is_array:d.d_is_array)
          ir.p_dummies;
        !found
      end

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let rec compile_expr env (e : expr) : cexpr =
  (* the generic lane: the interpreter itself on the original node *)
  let gen () = Kv (fun ct fr -> eval_expr ct.rt fr e) in
  match e with
  | Elit (Value.Vreal (x, k)) -> Kf ((fun ct _ -> ct.scratch.fv <- x), k)
  | Elit (Value.Vint i) -> Ki (fun _ _ -> i)
  | Elit (Value.Vlog b) -> Kb (fun _ _ -> b)
  | Elit (Value.Vstr _ as v) -> Kv (fun _ _ -> v)
  | Evar { name; r } -> (
    match r with
    | Rerr m -> Kv (fun _ _ -> trap_s m)
    | Rparam s -> (
      match env.psty.(s) with
      | Sreal k -> Kf ((fun ct _ -> ct.scratch.fv <- as_float (force_param ct.rt s)), k)
      | Sint -> Ki (fun ct _ -> as_int (force_param ct.rt s))
      | Sbool -> Kb (fun ct _ -> as_bool (force_param ct.rt s))
      | Sarr _ | Sunknown -> Kv (fun ct _ -> force_param ct.rt s))
    | Rlocal i -> (
      match sty_of_ref env r with
      | Sreal k ->
        Kf
          ( (fun ct fr ->
              match fr.cells.(i) with
              | Some (Value.Scalar sr) -> ct.scratch.fv <- as_float !sr
              | Some _ -> trap "whole array %s used as a value" name
              | None -> trap "variable %s local to %s referenced out of scope" name fr.pname),
            k )
      | Sint ->
        Ki
          (fun _ fr ->
            match fr.cells.(i) with
            | Some (Value.Scalar sr) -> as_int !sr
            | Some _ -> trap "whole array %s used as a value" name
            | None -> trap "variable %s local to %s referenced out of scope" name fr.pname)
      | Sbool ->
        Kb
          (fun _ fr ->
            match fr.cells.(i) with
            | Some (Value.Scalar sr) -> as_bool !sr
            | Some _ -> trap "whole array %s used as a value" name
            | None -> trap "variable %s local to %s referenced out of scope" name fr.pname)
      | Sarr _ | Sunknown -> gen ())
    | Rglobal i -> (
      match sty_of_ref env r with
      | Sreal k ->
        Kf
          ( (fun ct _ ->
              match ct.rt.rglobals.(i) with
              | Value.Scalar sr -> ct.scratch.fv <- as_float !sr
              | _ -> trap "whole array %s used as a value" name),
            k )
      | Sint ->
        Ki
          (fun ct _ ->
            match ct.rt.rglobals.(i) with
            | Value.Scalar sr -> as_int !sr
            | _ -> trap "whole array %s used as a value" name)
      | Sbool ->
        Kb
          (fun ct _ ->
            match ct.rt.rglobals.(i) with
            | Value.Scalar sr -> as_bool !sr
            | _ -> trap "whole array %s used as a value" name)
      | Sarr _ | Sunknown -> gen ()))
  | Eneg { e = e1; costs } -> (
    match compile_expr env e1 with
    | Kf (f, k) ->
      let sub = sub3 costs k in
      Kf
        ( (fun ct fr ->
            f ct fr;
            let x = ct.scratch.fv in
            let rt = ct.rt in
            charge rt ci_flops sub.(rt.rvec);
            ct.scratch.fv <- cmk_realf k (-.x)),
          k )
    | Ki f ->
      Ki
        (fun ct fr ->
          let i = f ct fr in
          let rt = ct.rt in
          charge rt ci_flops rt.rmachine.Machine.int_op;
          -i)
    | Kb f ->
      Kv
        (fun ct fr ->
          ignore (f ct fr : bool);
          trap_s "negation of non-numeric value")
    | Kv f ->
      Kv
        (fun ct fr ->
          let rt = ct.rt in
          match f ct fr with
          | Value.Vint i ->
            charge rt ci_flops rt.rmachine.Machine.int_op;
            Value.Vint (-i)
          | Value.Vreal (x, k) ->
            charge rt ci_flops costs.((rt.rvec * 2) + kind_idx k);
            mk_real k (-.x)
          | Value.Vlog _ | Value.Vstr _ -> trap_s "negation of non-numeric value"))
  | Enot e1 ->
    let f = bview (compile_expr env e1) in
    Kb (fun ct fr -> not (f ct fr))
  | Ebin { op; a; b; exempt; costs; powmul } -> compile_bin env op a b exempt costs powmul
  | Earr { name; r; idx; mem } -> compile_load env e name r idx mem
  | Ecall cs -> (
    let ca = compile_call env cs in
    match callee_result_sty env cs with
    | Sreal k ->
      Kf
        ( (fun ct fr ->
            match exec_ccall ct fr ca with
            | Some v -> ct.scratch.fv <- as_float v
            | None -> trap "subroutine %s called as a function" cs.cs_name),
          k )
    | Sint ->
      Ki
        (fun ct fr ->
          match exec_ccall ct fr ca with
          | Some v -> as_int v
          | None -> trap "subroutine %s called as a function" cs.cs_name)
    | Sbool ->
      Kb
        (fun ct fr ->
          match exec_ccall ct fr ca with
          | Some v -> as_bool v
          | None -> trap "subroutine %s called as a function" cs.cs_name)
    | Sarr _ | Sunknown ->
      Kv
        (fun ct fr ->
          match exec_ccall ct fr ca with
          | Some v -> v
          | None -> trap "subroutine %s called as a function" cs.cs_name))
  | Eintr it -> compile_intr env e it
  | Etrap m -> Kv (fun _ _ -> trap_s m)

and compile_bin env op a b exempt costs powmul : cexpr =
  let ca = compile_expr env a in
  let cb = compile_expr env b in
  (* exact fallback: both operands forced, then [Lower.bin_values] *)
  let gen_bin () =
    let fa = force ca and fb = force cb in
    Kv
      (fun ct fr ->
        let va = fa ct fr in
        let vb = fb ct fr in
        bin_values ct.rt op ~exempt ~costs ~powmul va vb)
  in
  match op with
  | Ast.And ->
    let fa = bview ca and fb = bview cb in
    Kb (fun ct fr -> if fa ct fr then fb ct fr else false)
  | Ast.Or ->
    let fa = bview ca and fb = bview cb in
    Kb (fun ct fr -> if fa ct fr then true else fb ct fr)
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div -> (
    match ca, cb with
    | Ki fa, Ki fb ->
      Ki
        (fun ct fr ->
          let x = fa ct fr in
          let y = fb ct fr in
          let rt = ct.rt in
          charge rt ci_flops rt.rmachine.Machine.int_op;
          iarith op x y)
    | (Kf _ | Ki _), (Kf _ | Ki _) ->
      let k, conv =
        match ca, cb with
        | Kf (_, k1), Kf (_, k2) ->
          ((if k1 = Ast.K8 || k2 = Ast.K8 then Ast.K8 else Ast.K4), k1 <> k2 && not exempt)
        | Kf (_, k), _ | _, Kf (_, k) -> (k, false)
        | _ -> assert false
      in
      let sub = sub3 costs k in
      let fa = fput ca and fb = fput cb in
      Kf
        ( (fun ct fr ->
            fa ct fr;
            let x = ct.scratch.fv in
            fb ct fr;
            let y = ct.scratch.fv in
            let rt = ct.rt in
            if conv then charge rt ci_convert rt.rconv.(rt.rvec);
            charge rt ci_flops sub.(rt.rvec);
            ct.scratch.fv <- cmk_realf k (arith4 op x y)),
          k )
    | _ -> gen_bin ())
  | Ast.Pow -> (
    match ca, cb with
    | Ki fa, Ki fb ->
      Ki
        (fun ct fr ->
          let x = fa ct fr in
          let y = fb ct fr in
          let rt = ct.rt in
          charge rt ci_flops rt.rmachine.Machine.int_op;
          iarith Ast.Pow x y)
    | Kf (fa, k), Ki fb ->
      (* runtime integer exponent: strength-reduced when |n| <= 4 *)
      let psub = sub3 powmul k and csub = sub3 costs k in
      Kf
        ( (fun ct fr ->
            fa ct fr;
            let x = ct.scratch.fv in
            let n = fb ct fr in
            let rt = ct.rt in
            if abs n <= 4 then begin
              charge rt ci_flops (psub.(rt.rvec) *. float_of_int (max 1 (abs n - 1)));
              let v = ipow4 x (abs n) in
              ct.scratch.fv <- cmk_realf k (if n < 0 then 1.0 /. v else v)
            end
            else begin
              charge rt ci_flops csub.(rt.rvec);
              ct.scratch.fv <- cmk_realf k (Float.pow x (float_of_int n))
            end),
          k )
    | Kf (fa, k1), Kf (fb, k2) ->
      let k = if k1 = Ast.K8 || k2 = Ast.K8 then Ast.K8 else Ast.K4 in
      let conv = k1 <> k2 && not exempt in
      let csub = sub3 costs k in
      Kf
        ( (fun ct fr ->
            fa ct fr;
            let x = ct.scratch.fv in
            fb ct fr;
            let y = ct.scratch.fv in
            let rt = ct.rt in
            if conv then charge rt ci_convert rt.rconv.(rt.rvec);
            charge rt ci_flops csub.(rt.rvec);
            ct.scratch.fv <- cmk_realf k (Float.pow x y)),
          k )
    | Ki fa, Kf (fb, k) ->
      let csub = sub3 costs k in
      Kf
        ( (fun ct fr ->
            let x = float_of_int (fa ct fr) in
            fb ct fr;
            let y = ct.scratch.fv in
            let rt = ct.rt in
            charge rt ci_flops csub.(rt.rvec);
            ct.scratch.fv <- cmk_realf k (Float.pow x y)),
          k )
    | _ -> gen_bin ())
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
    match ca, cb with
    | (Kf _ | Ki _), (Kf _ | Ki _) ->
      let conv =
        match ca, cb with
        | Kf (_, k1), Kf (_, k2) -> k1 <> k2 && not exempt
        | _ -> false
      in
      let fa = fput ca and fb = fput cb in
      Kb
        (fun ct fr ->
          fa ct fr;
          let x = ct.scratch.fv in
          fb ct fr;
          let y = ct.scratch.fv in
          let rt = ct.rt in
          if conv then charge rt ci_convert rt.rconv.(rt.rvec);
          charge rt ci_flops rt.rmachine.Machine.compare_cost;
          cmp_fn op x y)
    | Kb fa, Kb fb ->
      Kb
        (fun ct fr ->
          let x = fa ct fr in
          let y = fb ct fr in
          let rt = ct.rt in
          charge rt ci_flops rt.rmachine.Machine.compare_cost;
          match op with
          | Ast.Eq -> x = y
          | Ast.Ne -> x <> y
          | _ -> trap "ordering of logicals")
    | _ -> gen_bin ())

and compile_load env (e0 : expr) name r idx mem : cexpr =
  let gen () = Kv (fun ct fr -> eval_expr ct.rt fr e0) in
  match r with
  | Rerr _ | Rparam _ -> gen ()
  | Rlocal _ | Rglobal _ -> (
    let resolve : cctx -> rframe -> Value.cell =
      match r with
      | Rlocal i ->
        fun _ fr -> (
          match fr.cells.(i) with
          | Some c -> c
          | None -> trap "variable %s local to %s referenced out of scope" name fr.pname)
      | Rglobal i -> fun ct _ -> ct.rt.rglobals.(i)
      | Rparam _ | Rerr _ -> assert false
    in
    let cidx = Array.map (fun e -> iview (compile_expr env e)) idx in
    (* resolve the cell, evaluate indices (charging), then dispatch on
       the tag — the same order as [Earr] + [load_indexed]. Defensive
       arms replicate load-then-coerce on the (unreachable) mismatched
       tags. *)
    match sty_of_ref env r with
    | Sarr (Ast.Treal k) when Array.length cidx = 1 ->
      let c0 = cidx.(0) in
      Kf
        ( (fun ct fr ->
            let rt = ct.rt in
            let cell = resolve ct fr in
            charge rt ci_flops rt.rmachine.Machine.int_op;
            let i = c0 ct fr in
            match cell with
            | Value.Real_array { kind; data; dims } ->
              charge rt ci_memory mem.((rt.rvec * 2) + kind_idx kind);
              ct.scratch.fv <- data.(offset1 ~name ~dims i)
            | Value.Int_array { data; dims } ->
              charge rt ci_flops rt.rmachine.Machine.int_op;
              ct.scratch.fv <- float_of_int data.(offset1 ~name ~dims i)
            | Value.Log_array { data; dims } ->
              ct.scratch.fv <- as_float (Value.Vlog data.(offset1 ~name ~dims i))
            | Value.Scalar _ -> trap "scalar %s subscripted" name),
          k )
    | Sarr (Ast.Treal k) when Array.length cidx = 2 ->
      let c0 = cidx.(0) and c1 = cidx.(1) in
      Kf
        ( (fun ct fr ->
            let rt = ct.rt in
            let cell = resolve ct fr in
            charge rt ci_flops rt.rmachine.Machine.int_op;
            let i = c0 ct fr in
            charge rt ci_flops rt.rmachine.Machine.int_op;
            let j = c1 ct fr in
            match cell with
            | Value.Real_array { kind; data; dims } ->
              charge rt ci_memory mem.((rt.rvec * 2) + kind_idx kind);
              ct.scratch.fv <- data.(offset2 ~name ~dims i j)
            | Value.Int_array { data; dims } ->
              charge rt ci_flops rt.rmachine.Machine.int_op;
              ct.scratch.fv <- float_of_int data.(offset2 ~name ~dims i j)
            | Value.Log_array { data; dims } ->
              ct.scratch.fv <- as_float (Value.Vlog data.(offset2 ~name ~dims i j))
            | Value.Scalar _ -> trap "scalar %s subscripted" name),
          k )
    | Sarr (Ast.Treal k) ->
      Kf
        ( (fun ct fr ->
            let rt = ct.rt in
            let cell = resolve ct fr in
            let ix = eval_cidx cidx ct fr in
            match cell with
            | Value.Real_array { kind; data; dims } ->
              charge rt ci_memory mem.((rt.rvec * 2) + kind_idx kind);
              ct.scratch.fv <- data.(offset_arr ~name ~dims ix)
            | Value.Int_array { data; dims } ->
              charge rt ci_flops rt.rmachine.Machine.int_op;
              ct.scratch.fv <- float_of_int data.(offset_arr ~name ~dims ix)
            | Value.Log_array { data; dims } ->
              ct.scratch.fv <- as_float (Value.Vlog data.(offset_arr ~name ~dims ix))
            | Value.Scalar _ -> trap "scalar %s subscripted" name),
          k )
    | Sarr Ast.Tinteger when Array.length cidx = 1 ->
      let c0 = cidx.(0) in
      Ki
        (fun ct fr ->
          let rt = ct.rt in
          let cell = resolve ct fr in
          charge rt ci_flops rt.rmachine.Machine.int_op;
          let i = c0 ct fr in
          match cell with
          | Value.Int_array { data; dims } ->
            charge rt ci_flops rt.rmachine.Machine.int_op;
            data.(offset1 ~name ~dims i)
          | Value.Real_array { kind; data; dims } ->
            charge rt ci_memory mem.((rt.rvec * 2) + kind_idx kind);
            as_int (Value.Vreal (data.(offset1 ~name ~dims i), kind))
          | Value.Log_array { data; dims } -> as_int (Value.Vlog data.(offset1 ~name ~dims i))
          | Value.Scalar _ -> trap "scalar %s subscripted" name)
    | Sarr Ast.Tinteger when Array.length cidx = 2 ->
      let c0 = cidx.(0) and c1 = cidx.(1) in
      Ki
        (fun ct fr ->
          let rt = ct.rt in
          let cell = resolve ct fr in
          charge rt ci_flops rt.rmachine.Machine.int_op;
          let i = c0 ct fr in
          charge rt ci_flops rt.rmachine.Machine.int_op;
          let j = c1 ct fr in
          match cell with
          | Value.Int_array { data; dims } ->
            charge rt ci_flops rt.rmachine.Machine.int_op;
            data.(offset2 ~name ~dims i j)
          | Value.Real_array { kind; data; dims } ->
            charge rt ci_memory mem.((rt.rvec * 2) + kind_idx kind);
            as_int (Value.Vreal (data.(offset2 ~name ~dims i j), kind))
          | Value.Log_array { data; dims } -> as_int (Value.Vlog data.(offset2 ~name ~dims i j))
          | Value.Scalar _ -> trap "scalar %s subscripted" name)
    | Sarr Ast.Tinteger ->
      Ki
        (fun ct fr ->
          let rt = ct.rt in
          let cell = resolve ct fr in
          let ix = eval_cidx cidx ct fr in
          match cell with
          | Value.Int_array { data; dims } ->
            charge rt ci_flops rt.rmachine.Machine.int_op;
            data.(offset_arr ~name ~dims ix)
          | Value.Real_array { kind; data; dims } ->
            charge rt ci_memory mem.((rt.rvec * 2) + kind_idx kind);
            as_int (Value.Vreal (data.(offset_arr ~name ~dims ix), kind))
          | Value.Log_array { data; dims } -> as_int (Value.Vlog data.(offset_arr ~name ~dims ix))
          | Value.Scalar _ -> trap "scalar %s subscripted" name)
    | Sarr Ast.Tlogical ->
      Kb
        (fun ct fr ->
          let rt = ct.rt in
          let cell = resolve ct fr in
          let ix = eval_cidx cidx ct fr in
          match cell with
          | Value.Log_array { data; dims } -> data.(offset_arr ~name ~dims ix)
          | Value.Real_array { kind; data; dims } ->
            charge rt ci_memory mem.((rt.rvec * 2) + kind_idx kind);
            as_bool (Value.Vreal (data.(offset_arr ~name ~dims ix), kind))
          | Value.Int_array { data; dims } ->
            charge rt ci_flops rt.rmachine.Machine.int_op;
            as_bool (Value.Vint data.(offset_arr ~name ~dims ix))
          | Value.Scalar _ -> trap "scalar %s subscripted" name)
    | Sreal _ | Sint | Sbool | Sunknown -> gen ())

and compile_intr env (e0 : expr) (it : intr) : cexpr =
  let gen () = Kv (fun ct fr -> eval_expr ct.rt fr e0) in
  match it with
  | Iabs { e; costs } -> (
    match compile_expr env e with
    | Kf (f, k) ->
      let sub = sub3 costs k in
      Kf
        ( (fun ct fr ->
            f ct fr;
            let x = ct.scratch.fv in
            let rt = ct.rt in
            charge rt ci_flops sub.(rt.rvec);
            ct.scratch.fv <- cmk_realf k (Float.abs x)),
          k )
    | Ki f ->
      Ki
        (fun ct fr ->
          let i = f ct fr in
          let rt = ct.rt in
          charge rt ci_flops rt.rmachine.Machine.int_op;
          abs i)
    | Kb _ | Kv _ -> gen ())
  | Ielem { name; fn; e; costs } -> (
    match compile_expr env e with
    | Kf (f, k) -> (
      let sub = sub3 costs k in
      (* dispatch on the name once at compile time: the branches call the
         very functions [elem_fn] maps these names to, but directly — an
         indirect [fn] application boxes argument and result every time,
         and elementals sit in the models' innermost loops *)
      match name with
      | "sqrt" ->
        Kf
          ( (fun ct fr ->
              f ct fr;
              let x = ct.scratch.fv in
              let rt = ct.rt in
              charge rt ci_flops sub.(rt.rvec);
              ct.scratch.fv <- cmk_realf k (sqrt x)),
            k )
      | "exp" ->
        Kf
          ( (fun ct fr ->
              f ct fr;
              let x = ct.scratch.fv in
              let rt = ct.rt in
              charge rt ci_flops sub.(rt.rvec);
              ct.scratch.fv <- cmk_realf k (exp x)),
            k )
      | "log" ->
        Kf
          ( (fun ct fr ->
              f ct fr;
              let x = ct.scratch.fv in
              let rt = ct.rt in
              charge rt ci_flops sub.(rt.rvec);
              ct.scratch.fv <- cmk_realf k (log x)),
            k )
      | "log10" ->
        Kf
          ( (fun ct fr ->
              f ct fr;
              let x = ct.scratch.fv in
              let rt = ct.rt in
              charge rt ci_flops sub.(rt.rvec);
              ct.scratch.fv <- cmk_realf k (log10 x)),
            k )
      | "sin" ->
        Kf
          ( (fun ct fr ->
              f ct fr;
              let x = ct.scratch.fv in
              let rt = ct.rt in
              charge rt ci_flops sub.(rt.rvec);
              ct.scratch.fv <- cmk_realf k (sin x)),
            k )
      | "cos" ->
        Kf
          ( (fun ct fr ->
              f ct fr;
              let x = ct.scratch.fv in
              let rt = ct.rt in
              charge rt ci_flops sub.(rt.rvec);
              ct.scratch.fv <- cmk_realf k (cos x)),
            k )
      | "tan" ->
        Kf
          ( (fun ct fr ->
              f ct fr;
              let x = ct.scratch.fv in
              let rt = ct.rt in
              charge rt ci_flops sub.(rt.rvec);
              ct.scratch.fv <- cmk_realf k (tan x)),
            k )
      | "atan" ->
        Kf
          ( (fun ct fr ->
              f ct fr;
              let x = ct.scratch.fv in
              let rt = ct.rt in
              charge rt ci_flops sub.(rt.rvec);
              ct.scratch.fv <- cmk_realf k (atan x)),
            k )
      | "asin" ->
        Kf
          ( (fun ct fr ->
              f ct fr;
              let x = ct.scratch.fv in
              let rt = ct.rt in
              charge rt ci_flops sub.(rt.rvec);
              ct.scratch.fv <- cmk_realf k (asin x)),
            k )
      | "acos" ->
        Kf
          ( (fun ct fr ->
              f ct fr;
              let x = ct.scratch.fv in
              let rt = ct.rt in
              charge rt ci_flops sub.(rt.rvec);
              ct.scratch.fv <- cmk_realf k (acos x)),
            k )
      | "sinh" ->
        Kf
          ( (fun ct fr ->
              f ct fr;
              let x = ct.scratch.fv in
              let rt = ct.rt in
              charge rt ci_flops sub.(rt.rvec);
              ct.scratch.fv <- cmk_realf k (sinh x)),
            k )
      | "cosh" ->
        Kf
          ( (fun ct fr ->
              f ct fr;
              let x = ct.scratch.fv in
              let rt = ct.rt in
              charge rt ci_flops sub.(rt.rvec);
              ct.scratch.fv <- cmk_realf k (cosh x)),
            k )
      | "tanh" ->
        Kf
          ( (fun ct fr ->
              f ct fr;
              let x = ct.scratch.fv in
              let rt = ct.rt in
              charge rt ci_flops sub.(rt.rvec);
              ct.scratch.fv <- cmk_realf k (tanh x)),
            k )
      | "aint" ->
        Kf
          ( (fun ct fr ->
              f ct fr;
              let x = ct.scratch.fv in
              let rt = ct.rt in
              charge rt ci_flops sub.(rt.rvec);
              ct.scratch.fv <- cmk_realf k (Float.trunc x)),
            k )
      | "anint" ->
        Kf
          ( (fun ct fr ->
              f ct fr;
              let x = ct.scratch.fv in
              let rt = ct.rt in
              charge rt ci_flops sub.(rt.rvec);
              ct.scratch.fv <- cmk_realf k (Float.round x)),
            k )
      | _ ->
        Kf
          ( (fun ct fr ->
              f ct fr;
              let x = ct.scratch.fv in
              let rt = ct.rt in
              charge rt ci_flops sub.(rt.rvec);
              ct.scratch.fv <- cmk_realf k (fn x)),
            k ))
    | Ki _ | Kb _ | Kv _ -> gen ())
  | Iminmax { name; args; costs } -> (
    let n = Array.length args in
    if n < 2 then gen ()
    else
      let cs = Array.map (compile_expr env) args in
      let all_int = Array.for_all (function Ki _ -> true | _ -> false) cs in
      let typed = Array.for_all (function Ki _ | Kf _ -> true | _ -> false) cs in
      if all_int then begin
        let fs = Array.map iview cs in
        let pick : int -> int -> int = if name = "min" then min else max in
        Ki
          (fun ct fr ->
            let rt = ct.rt in
            let vs = Array.make n 0 in
            for i = 0 to n - 1 do
              vs.(i) <- fs.(i) ct fr
            done;
            charge rt ci_flops rt.rmachine.Machine.int_op;
            let acc = ref vs.(0) in
            for i = 1 to n - 1 do
              acc := pick !acc vs.(i)
            done;
            !acc)
      end
      else if typed then begin
        (* at least one real operand: the promoted kind is static *)
        let k =
          Array.fold_left
            (fun acc c -> match c with Kf (_, Ast.K8) -> Ast.K8 | _ -> acc)
            Ast.K4 cs
        in
        let sub = sub3 costs k in
        let fs = Array.map fput cs in
        if n = 2 then begin
          (* two-argument min/max dominates; [Float.min]/[Float.max] are
             stdlib-inlinable, so the pair never boxes *)
          let f0 = fs.(0) and f1 = fs.(1) in
          let is_min = name = "min" in
          Kf
            ( (fun ct fr ->
                f0 ct fr;
                let a = ct.scratch.fv in
                f1 ct fr;
                let b = ct.scratch.fv in
                let rt = ct.rt in
                charge rt ci_flops sub.(rt.rvec);
                let z = if is_min then Float.min a b else Float.max a b in
                ct.scratch.fv <- cmk_realf k z),
              k )
        end
        else begin
          let pick = if name = "min" then Float.min else Float.max in
          Kf
            ( (fun ct fr ->
                let rt = ct.rt in
                let vs = Array.make n 0.0 in
                for i = 0 to n - 1 do
                  fs.(i) ct fr;
                  vs.(i) <- ct.scratch.fv
                done;
                charge rt ci_flops sub.(rt.rvec);
                let acc = ref vs.(0) in
                for i = 1 to n - 1 do
                  acc := pick !acc vs.(i)
                done;
                ct.scratch.fv <- cmk_realf k !acc),
              k )
        end
      end
      else gen ())
  | Imod { a; b; costs } -> (
    match compile_expr env a, compile_expr env b with
    | Ki fa, Ki fb ->
      Ki
        (fun ct fr ->
          let x = fa ct fr in
          let y = fb ct fr in
          let rt = ct.rt in
          charge rt ci_flops rt.rmachine.Machine.int_op;
          if y = 0 then trap "mod with zero divisor" else x - (x / y * y))
    | ((Kf _ | Ki _) as ca), ((Kf _ | Ki _) as cb) ->
      let k =
        match ca, cb with
        | Kf (_, k1), Kf (_, k2) -> if k1 = Ast.K8 || k2 = Ast.K8 then Ast.K8 else Ast.K4
        | Kf (_, k), _ | _, Kf (_, k) -> k
        | _ -> assert false
      in
      let sub = sub3 costs k in
      let fa = fput ca and fb = fput cb in
      Kf
        ( (fun ct fr ->
            fa ct fr;
            let x = ct.scratch.fv in
            fb ct fr;
            let y = ct.scratch.fv in
            let rt = ct.rt in
            charge rt ci_flops sub.(rt.rvec);
            ct.scratch.fv <- cmk_realf k (Float.rem x y)),
          k )
    | _ -> gen ())
  | Iatan2 { a; b; costs } -> (
    match compile_expr env a, compile_expr env b with
    | ((Kf _ | Ki _) as ca), ((Kf _ | Ki _) as cb)
      when (match ca, cb with Ki _, Ki _ -> false | _ -> true) ->
      let k =
        match ca, cb with
        | Kf (_, k1), Kf (_, k2) -> if k1 = Ast.K8 || k2 = Ast.K8 then Ast.K8 else Ast.K4
        | Kf (_, k), _ | _, Kf (_, k) -> k
        | _ -> assert false
      in
      let sub = sub3 costs k in
      let fa = fput ca and fb = fput cb in
      Kf
        ( (fun ct fr ->
            fa ct fr;
            let x = ct.scratch.fv in
            fb ct fr;
            let y = ct.scratch.fv in
            let rt = ct.rt in
            charge rt ci_flops sub.(rt.rvec);
            ct.scratch.fv <- cmk_realf k (Float.atan2 x y)),
          k )
    | _ -> gen ())
  | Isign { a; b; costs } -> (
    match compile_expr env a, compile_expr env b with
    | Ki fa, Ki fb ->
      Ki
        (fun ct fr ->
          let x = fa ct fr in
          let y = fb ct fr in
          let rt = ct.rt in
          charge rt ci_flops rt.rmachine.Machine.int_op;
          let m = abs x in
          if y >= 0 then m else -m)
    | ((Kf _ | Ki _) as ca), ((Kf _ | Ki _) as cb) ->
      let k =
        match ca, cb with
        | Kf (_, k1), Kf (_, k2) -> if k1 = Ast.K8 || k2 = Ast.K8 then Ast.K8 else Ast.K4
        | Kf (_, k), _ | _, Kf (_, k) -> k
        | _ -> assert false
      in
      let sub = sub3 costs k in
      let fa = fput ca and fb = fput cb in
      Kf
        ( (fun ct fr ->
            fa ct fr;
            let x = ct.scratch.fv in
            fb ct fr;
            let y = ct.scratch.fv in
            let rt = ct.rt in
            charge rt ci_flops sub.(rt.rvec);
            let m = Float.abs x in
            ct.scratch.fv <- cmk_realf k (if y >= 0.0 then m else -.m)),
          k )
    | _ -> gen ())
  | Ireal { e; kind = None } -> (
    match compile_expr env e with
    | Kf (f, Ast.K4) ->
      Kf
        ( (fun ct fr ->
            f ct fr;
            ct.scratch.fv <- round32 ct.scratch.fv),
          Ast.K4 )
    | Kf (f, Ast.K8) ->
      Kf
        ( (fun ct fr ->
            f ct fr;
            let x = ct.scratch.fv in
            let rt = ct.rt in
            charge rt ci_convert rt.rconv.(rt.rvec);
            ct.scratch.fv <- round32 x),
          Ast.K4 )
    | Ki f -> Kf ((fun ct fr -> ct.scratch.fv <- round32 (float_of_int (f ct fr))), Ast.K4)
    | Kb _ | Kv _ -> gen ())
  | Ireal { e; kind = Some kk } -> (
    match compile_expr env e with
    | Kf (f, k) when k = kk ->
      Kf
        ( (fun ct fr ->
            f ct fr;
            ct.scratch.fv <- cround kk ct.scratch.fv),
          kk )
    | Kf (f, _) ->
      Kf
        ( (fun ct fr ->
            f ct fr;
            let x = ct.scratch.fv in
            let rt = ct.rt in
            charge rt ci_convert rt.rconv.(rt.rvec);
            ct.scratch.fv <- cround kk x),
          kk )
    | Ki f -> Kf ((fun ct fr -> ct.scratch.fv <- cround kk (float_of_int (f ct fr))), kk)
    | Kb _ | Kv _ -> gen ())
  | Idble e -> (
    match compile_expr env e with
    | Kf (f, Ast.K8) -> Kf (f, Ast.K8)
    | Kf (f, Ast.K4) ->
      Kf
        ( (fun ct fr ->
            f ct fr;
            let rt = ct.rt in
            charge rt ci_convert rt.rconv.(rt.rvec)),
          Ast.K8 )
    | Ki f -> Kf ((fun ct fr -> ct.scratch.fv <- float_of_int (f ct fr)), Ast.K8)
    | Kb _ | Kv _ -> gen ())
  | Iicvt { which; e } -> (
    match compile_expr env e with
    | (Kf _ | Ki _) as c ->
      (* int_op is charged before the operand evaluates *)
      let f = fput c in
      Ki
        (fun ct fr ->
          let rt = ct.rt in
          charge rt ci_flops rt.rmachine.Machine.int_op;
          f ct fr;
          let x = ct.scratch.fv in
          match which with
          | 0 -> int_of_float x
          | 1 -> int_of_float (Float.round x)
          | _ -> int_of_float (Float.floor x))
    | Kb _ | Kv _ -> gen ())
  | Iinq { name; e } -> (
    match compile_expr env e with
    | Kf (f, k) ->
      let v =
        match name, k with
        | "epsilon", Ast.K8 -> epsilon_float
        | "epsilon", Ast.K4 -> 1.1920928955078125e-07
        | "huge", Ast.K8 -> max_float
        | "huge", Ast.K4 -> Fp32.max_finite
        | "tiny", Ast.K8 -> min_float
        | "tiny", Ast.K4 -> Fp32.min_positive_normal
        | _ -> assert false
      in
      Kf
        ( (fun ct fr ->
            f ct fr;
            ct.scratch.fv <- v),
          k )
    | Ki _ | Kb _ | Kv _ -> gen ())
  | Ireal_bad _ | Idot _ | Ireduce _ | Isize _ -> gen ()

and cco env (co : copy_out option) : ccopy option =
  match co with
  | None -> None
  | Some c ->
    Some { cco = c; cco_idx = Array.map (fun e -> iview (compile_expr env e)) c.co_idx }

and compile_call env (cs : call_site) : ccall =
  {
    cc = cs;
    cc_args =
      Array.map
        (function
          | Aref { name; r } -> CAref { a = name; ar = r }
          (* a literal actual is already a [Value.v]; handing the block
             out directly is safe (immutable) and skips re-boxing it on
             every call *)
          | Aval { e = Elit v; lit; co } -> CAval { cv = (fun _ _ -> v); lit; co = cco env co }
          | Aval { e; lit; co } ->
            CAval { cv = force (compile_expr env e); lit; co = cco env co })
        cs.cs_args;
  }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

(* [store_indexed] with precompiled indices: same order — indices
   (charging int_op each), then tag dispatch, charges, rounding, finite
   trap, and the bounds check last *)
(* target resolvers, with the [Sassign] trap wording *)
let lsc_ref name r : cctx -> rframe -> Value.v ref =
  match r with
  | Rerr m -> fun _ _ -> trap_s m
  | Rparam s ->
    fun ct _ ->
      ignore (force_param ct.rt s : Value.v);
      trap "assignment to parameter %s" name
  | Rlocal i ->
    fun _ fr -> (
      match fr.cells.(i) with
      | Some (Value.Scalar sr) -> sr
      | Some _ -> trap "assignment to whole array %s unsupported" name
      | None -> trap "variable %s local to %s referenced out of scope" name fr.pname)
  | Rglobal i ->
    fun ct _ -> (
      match ct.rt.rglobals.(i) with
      | Value.Scalar sr -> sr
      | _ -> trap "assignment to whole array %s unsupported" name)

let arr_cell name r : cctx -> rframe -> Value.cell =
  match r with
  | Rerr m -> fun _ _ -> trap_s m
  | Rparam s ->
    fun ct _ ->
      ignore (force_param ct.rt s : Value.v);
      trap "assignment to parameter %s" name
  | Rlocal i ->
    fun _ fr -> (
      match fr.cells.(i) with
      | Some c -> c
      | None -> trap "variable %s local to %s referenced out of scope" name fr.pname)
  | Rglobal i -> fun ct _ -> ct.rt.rglobals.(i)

type ccase =
  | CCval of (cctx -> rframe -> Value.v)
  | CCrange of (cctx -> rframe -> int) option * (cctx -> rframe -> int) option

let rec compile_stmt env (s : stmt) : cstmt =
  match s with
  | Sassign { tgt = Lsc { name; r; rhs_lit }; rhs } -> (
    let resolve = lsc_ref name r in
    let crhs = compile_expr env rhs in
    (* rhs first, then target resolution, then the store *)
    match sty_of_ref env r, crhs with
    | Sreal kind, Kf (f, k) ->
      let conv = k <> kind && not rhs_lit in
      fun ct fr ->
        f ct fr;
        let x = ct.scratch.fv in
        let sr = resolve ct fr in
        let rt = ct.rt in
        (match !sr with
        | Value.Vreal _ ->
          if conv then charge rt ci_convert rt.rconv.(rt.rvec);
          let y = cround kind x in
          if not (Float.is_finite y) then
            trap "non-finite value stored to real(kind=%d) scalar" (Token.int_of_kind kind);
          sr := Value.Vreal (y, kind)
        | _ -> scalar_store rt sr (Value.Vreal (x, k)) ~lit:rhs_lit)
    | Sreal kind, Ki f ->
      fun ct fr ->
        let i = f ct fr in
        let sr = resolve ct fr in
        let rt = ct.rt in
        (match !sr with
        | Value.Vreal _ ->
          let y = cround kind (float_of_int i) in
          if not (Float.is_finite y) then
            trap "non-finite value stored to real(kind=%d) scalar" (Token.int_of_kind kind);
          sr := Value.Vreal (y, kind)
        | _ -> scalar_store rt sr (Value.Vint i) ~lit:rhs_lit)
    | Sint, Ki f ->
      fun ct fr ->
        let i = f ct fr in
        let sr = resolve ct fr in
        (match !sr with
        | Value.Vint _ -> sr := vint i
        | _ -> scalar_store ct.rt sr (Value.Vint i) ~lit:rhs_lit)
    | Sbool, Kb f ->
      fun ct fr ->
        let b = f ct fr in
        let sr = resolve ct fr in
        (match !sr with
        | Value.Vlog _ -> sr := Value.Vlog b
        | _ -> scalar_store ct.rt sr (Value.Vlog b) ~lit:rhs_lit)
    | _ ->
      let fv = force crhs in
      fun ct fr ->
        let v = fv ct fr in
        let sr = resolve ct fr in
        scalar_store ct.rt sr v ~lit:rhs_lit)
  | Sassign { tgt = Larr { name; r; idx; rhs_lit }; rhs } -> (
    let resolve = arr_cell name r in
    let crhs = compile_expr env rhs in
    let cidx = Array.map (fun e -> iview (compile_expr env e)) idx in
    match sty_of_ref env r, crhs with
    | Sarr (Ast.Treal _), Kf (f, krhs) when Array.length cidx = 1 ->
      (* hot combination: rank-1 real store with a typed-float rhs; the
         float stays unboxed from the rhs through the element store *)
      let c0 = cidx.(0) in
      fun ct fr ->
        f ct fr;
        let xv = ct.scratch.fv in
        let cell = resolve ct fr in
        let rt = ct.rt in
        charge rt ci_flops rt.rmachine.Machine.int_op;
        let i = c0 ct fr in
        (match cell with
        | Value.Real_array { kind; data; dims } ->
          charge rt ci_memory rt.rmemtab.((rt.rvec * 2) + kind_idx kind);
          if krhs <> kind && not rhs_lit then charge rt ci_convert rt.rconv.(rt.rvec);
          let x = cround kind xv in
          if not (Float.is_finite x) then
            trap "non-finite value stored to %s (real(kind=%d))" name (Token.int_of_kind kind);
          data.(offset1 ~name ~dims i) <- x
        | Value.Int_array { data; dims } ->
          charge rt ci_flops rt.rmachine.Machine.int_op;
          data.(offset1 ~name ~dims i) <- as_int (Value.Vreal (xv, krhs))
        | Value.Log_array { data; dims } ->
          data.(offset1 ~name ~dims i) <- as_bool (Value.Vreal (xv, krhs))
        | Value.Scalar _ -> trap "scalar %s subscripted" name)
    | Sarr (Ast.Treal _), Kf (f, krhs) when Array.length cidx = 2 ->
      (* same, rank 2 (MOM6's column fields) *)
      let c0 = cidx.(0) and c1 = cidx.(1) in
      fun ct fr ->
        f ct fr;
        let xv = ct.scratch.fv in
        let cell = resolve ct fr in
        let rt = ct.rt in
        charge rt ci_flops rt.rmachine.Machine.int_op;
        let i = c0 ct fr in
        charge rt ci_flops rt.rmachine.Machine.int_op;
        let j = c1 ct fr in
        (match cell with
        | Value.Real_array { kind; data; dims } ->
          charge rt ci_memory rt.rmemtab.((rt.rvec * 2) + kind_idx kind);
          if krhs <> kind && not rhs_lit then charge rt ci_convert rt.rconv.(rt.rvec);
          let x = cround kind xv in
          if not (Float.is_finite x) then
            trap "non-finite value stored to %s (real(kind=%d))" name (Token.int_of_kind kind);
          data.(offset2 ~name ~dims i j) <- x
        | Value.Int_array { data; dims } ->
          charge rt ci_flops rt.rmachine.Machine.int_op;
          data.(offset2 ~name ~dims i j) <- as_int (Value.Vreal (xv, krhs))
        | Value.Log_array { data; dims } ->
          data.(offset2 ~name ~dims i j) <- as_bool (Value.Vreal (xv, krhs))
        | Value.Scalar _ -> trap "scalar %s subscripted" name)
    | _ ->
      let fv = force crhs in
      fun ct fr ->
        let v = fv ct fr in
        let cell = resolve ct fr in
        cstore ct fr name cell cidx ~lit:rhs_lit v)
  | Scall cs ->
    let ca = compile_call env cs in
    fun ct fr -> ignore (exec_ccall ct fr ca : Value.v option)
  | Sallreduce { send; send_lit; rn; recv; op } ->
    let fsend = force (compile_expr env send) in
    let known_op = op = "sum" || op = "max" || op = "min" in
    fun ct fr ->
      let rt = ct.rt in
      let v = fsend ct fr in
      charge rt ci_reduction rt.rmachine.Machine.allreduce;
      if not known_op then trap "mpi_allreduce: unknown op %s" op;
      let r = scalar_ref rt fr rn recv in
      scalar_store rt r v ~lit:send_lit
  | Sbarrier ->
    fun ct _ ->
      let rt = ct.rt in
      charge rt ci_reduction (rt.rmachine.Machine.allreduce /. 2.0)
  | Sif { arms; els } ->
    let carms =
      Array.map (fun (c, blk) -> (bview (compile_expr env c), compile_block env blk)) arms
    in
    let cels = compile_block env els in
    let n = Array.length carms in
    (* [go] closes over the compiled arms only, so it is allocated once
       here rather than on every execution of the [if] *)
    let rec go ct fr i =
      if i = n then exec_cblock ct fr cels
      else
        let cond, blk = carms.(i) in
        if cond ct fr then exec_cblock ct fr blk else go ct fr (i + 1)
    in
    fun ct fr -> go ct fr 0
  | Sdo { vn; var; from_; to_; step; mode; iter_overhead; body } ->
    let flo = iview (compile_expr env from_) in
    let fhi = iview (compile_expr env to_) in
    let fstep = Option.map (fun e -> iview (compile_expr env e)) step in
    let cbody = compile_block env body in
    let midx = mode_idx mode in
    fun ct fr ->
      let rt = ct.rt in
      let r = scalar_ref rt fr vn var in
      let lo = flo ct fr in
      let hi = fhi ct fr in
      let stp = match fstep with Some f -> f ct fr | None -> 1 in
      if stp = 0 then trap "do loop with zero step";
      let saved_vec = rt.rvec in
      rt.rvec <- midx;
      (try
         if stp = 1 then
           for i = lo to hi do
             r := vint i;
             charge rt ci_loop iter_overhead;
             check_budget rt;
             try exec_cblock ct fr cbody with Rcycle -> ()
           done
         else begin
           let i = ref lo in
           while (stp > 0 && !i <= hi) || (stp < 0 && !i >= hi) do
             r := vint !i;
             charge rt ci_loop iter_overhead;
             check_budget rt;
             (try exec_cblock ct fr cbody with Rcycle -> ());
             i := !i + stp
           done
         end
       with
      | Rexit -> ()
      | e ->
        rt.rvec <- saved_vec;
        raise e);
      rt.rvec <- saved_vec
  | Sdo_while { cond; body } ->
    let fcond = bview (compile_expr env cond) in
    let cbody = compile_block env body in
    fun ct fr ->
      let rt = ct.rt in
      (try
         while fcond ct fr do
           charge rt ci_loop rt.rmachine.Machine.loop_overhead;
           check_budget rt;
           try exec_cblock ct fr cbody with Rcycle -> ()
         done
       with Rexit -> ())
  | Sselect { selector; arms; default } ->
    let fsel = force (compile_expr env selector) in
    let carms =
      Array.map
        (fun (items, blk) ->
          ( Array.map
              (function
                | Cval e -> CCval (force (compile_expr env e))
                | Crange (lo, hi) ->
                  CCrange
                    ( Option.map (fun e -> iview (compile_expr env e)) lo,
                      Option.map (fun e -> iview (compile_expr env e)) hi ))
              items,
            compile_block env blk ))
        arms
    in
    let cdefault = compile_block env default in
    let n = Array.length carms in
    (* as with [Sif]: the helpers take all state as arguments so they
       are built once at compile time, not per execution *)
    let matches ct fr sel item =
      match item, sel with
      | CCval f, _ -> (
        match f ct fr, sel with
        | Value.Vint a, Value.Vint b -> a = b
        | Value.Vlog a, Value.Vlog b -> a = b
        | _ -> trap "case value incompatible with selector")
      | CCrange (lo, hi), Value.Vint x ->
        let above = match lo with Some f -> x >= f ct fr | None -> true in
        let below = match hi with Some f -> x <= f ct fr | None -> true in
        above && below
      | CCrange _, _ -> trap "case range requires an integer selector"
    in
    let rec matches_any ct fr sel (items : ccase array) j =
      j < Array.length items
      && (matches ct fr sel items.(j) || matches_any ct fr sel items (j + 1))
    in
    let rec go ct fr sel i =
      if i = n then exec_cblock ct fr cdefault
      else
        let items, blk = carms.(i) in
        if matches_any ct fr sel items 0 then exec_cblock ct fr blk else go ct fr sel (i + 1)
    in
    fun ct fr ->
      let rt = ct.rt in
      let sel = fsel ct fr in
      charge rt ci_flops rt.rmachine.Machine.compare_cost;
      go ct fr sel 0
  | Sexit -> fun _ _ -> raise Rexit
  | Scycle -> fun _ _ -> raise Rcycle
  | Sreturn -> fun _ _ -> raise Rreturn
  | Sstop m -> fun _ _ -> raise (Rstop m)
  | Sprint args ->
    let fs = Array.map (fun e -> force (compile_expr env e)) args in
    let n = Array.length fs in
    fun ct fr ->
      let rt = ct.rt in
      let vs = Array.make n (Value.Vint 0) in
      for i = 0 to n - 1 do
        vs.(i) <- fs.(i) ct fr
      done;
      let line = String.concat " " (List.map Value.to_string (Array.to_list vs)) in
      rt.rprinted <- line :: rt.rprinted;
      if n > 0 then (
        match vs.(0) with
        | Value.Vstr key ->
          for i = 1 to n - 1 do
            match vs.(i) with
            | Value.Vreal (x, _) -> rt.rrecords <- (key, x) :: rt.rrecords
            | Value.Vint iv -> rt.rrecords <- (key, float_of_int iv) :: rt.rrecords
            | Value.Vlog _ | Value.Vstr _ -> ()
          done
        | _ -> ())
  | Strap m -> fun _ _ -> trap_s m

and compile_block env (blk : stmt array) : cstmt array = Array.map (compile_stmt env) blk

(* ------------------------------------------------------------------ *)
(* Whole-program compilation                                           *)

let compile_proc env (ir : proc_ir) : cproc =
  {
    ir;
    cbody = compile_block env ir.p_body;
    clocals =
      Array.map
        (fun (l : local) ->
          { cl_def = l; cl_dims = Array.map (fun e -> iview (compile_expr env e)) l.l_dims })
        ir.p_locals;
    cinits =
      Array.map
        (fun (it : initr) -> { cin_def = it; cin_rhs = force (compile_expr env it.i_rhs) })
        ir.p_inits;
  }

module Cache = struct
  (* Same key discipline and locking protocol as [Lower.Cache]:
     compiled procedures are pure functions of (IR, machine) and the IR
     is itself pinned by the key, so entries are shared across variants
     and domains; a publish race keeps the first-published closure tree. *)
  type t = {
    tbl : (string, cproc) Hashtbl.t;
    lock : Mutex.t;
    (* atomics, as in [Lower.Cache]: domains aggregate traffic without
       holding [lock] and totals are never torn *)
    hits : int Atomic.t;
    misses : int Atomic.t;
  }

  let create () =
    { tbl = Hashtbl.create 512; lock = Mutex.create (); hits = Atomic.make 0;
      misses = Atomic.make 0 }

  let stats t = (Atomic.get t.hits, Atomic.get t.misses)

  let get_or_compile t key f =
    Mutex.lock t.lock;
    match Hashtbl.find_opt t.tbl key with
    | Some cp ->
      Atomic.incr t.hits;
      Mutex.unlock t.lock;
      cp
    | None ->
      Atomic.incr t.misses;
      Mutex.unlock t.lock;
      let cp = f () in
      Mutex.lock t.lock;
      (match Hashtbl.find_opt t.tbl key with
      | Some winner ->
        Mutex.unlock t.lock;
        winner
      | None ->
        Hashtbl.replace t.tbl key cp;
        Mutex.unlock t.lock;
        cp)
end

type t = { cl : program; cprocs : cproc array; cmain : cstmt array }

let compile ?cache (p : program) : t =
  let gsty = Array.make p.nglobals Sunknown in
  Array.iter
    (fun (g : global) ->
      gsty.(g.g_slot) <-
        (match g.g_extents with
        | Some [||] -> sty_of_base g.g_base ~is_array:false
        | Some _ -> Sarr g.g_base
        | None -> Sunknown))
    p.globals;
  let psty =
    Array.map (fun (pa : param) -> sty_of_base pa.pa_base ~is_array:false) p.params
  in
  let fsty_of (ir : proc_ir) =
    let fsty = Array.make ir.p_nslots Sunknown in
    Array.iter
      (fun (d : dummy) ->
        if not d.d_undeclared then fsty.(d.d_slot) <- sty_of_base d.d_base ~is_array:d.d_is_array)
      ir.p_dummies;
    Array.iter
      (fun (l : local) ->
        fsty.(l.l_slot) <- sty_of_base l.l_base ~is_array:(l.l_dims <> [||]))
      ir.p_locals;
    fsty
  in
  let cached key f =
    match cache with
    | Some c when key <> "" -> Cache.get_or_compile c key f
    | Some _ | None -> f ()
  in
  let cprocs =
    Array.mapi
      (fun i (ir : proc_ir) ->
        cached ir.p_key (fun () ->
            compile_proc
              { prog = p; gsty; psty; fsty = fsty_of ir; clinks = p.links.(i) }
              ir))
      p.procs
  in
  (* the main body runs in an empty frame: every name it touches is a
     global or parameter, so [fsty] is empty *)
  let main_env = { prog = p; gsty; psty; fsty = [||]; clinks = p.main_links } in
  let cmain =
    match cache with
    | Some c when p.main_key <> "" ->
      let main_ir =
        {
          p_name = "";
          p_key = p.main_key;
          p_result = -1;
          p_is_function = false;
          p_is_wrapper = false;
          p_inlinable = false;
          p_nslots = 0;
          p_dummies = [||];
          p_locals = [||];
          p_inits = [||];
          p_body = p.main_body;
          p_callees = [||];
        }
      in
      (Cache.get_or_compile c p.main_key (fun () ->
           {
             ir = main_ir;
             cbody = compile_block main_env p.main_body;
             clocals = [||];
             cinits = [||];
           }))
        .cbody
    | Some _ | None -> compile_block main_env p.main_body
  in
  { cl = p; cprocs; cmain }

let run ?budget (t : t) : Interp.outcome =
  let rt = fresh_rctx ?budget t.cl in
  let ct = { rt; cprocs = t.cprocs; scratch = { fv = 0.0 } } in
  run_with rt t.cl ~exec:(fun () ->
      let fr = { pname = ""; cells = [||]; flinks = t.cl.main_links } in
      exec_cblock ct fr t.cmain)


