let[@inline] round x = Int32.float_of_bits (Int32.bits_of_float x)
let is_representable x = Float.equal (round x) x || Float.is_nan x
let max_finite = round 3.4028234663852886e38
let min_positive_normal = round 1.1754943508222875e-38
let[@inline] of_kind (k : Fortran.Ast.real_kind) x = match k with Fortran.Ast.K4 -> round x | Fortran.Ast.K8 -> x
