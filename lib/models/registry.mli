(** The tuning targets of the case study.

    Each entry bundles what the paper's experimental setup specifies per
    model (Sec. IV-A): the program, the representative workload, the
    targeted hotspot (module and procedures), the scalar correctness
    metric and its threshold, the observed run-to-run noise level and the
    Eq.-1 [n] derived from it — plus the paper's own numbers for
    side-by-side reporting in Table I/II and EXPERIMENTS.md.

    The four models are synthetic proxies (substitution rule; see
    DESIGN.md §1): each reproduces its original's {e tunability profile} —
    which of the paper's three hotspot criteria it satisfies and which
    failure modes its variants exhibit — at a laptop-scale grid. *)

type threshold =
  | Fixed of float
      (** absolute threshold on the L2-over-time relative error *)
  | From_uniform32 of float
      (** multiplier on the error observed for the uniform 32-bit variant —
          how the paper set MPAS-A's threshold *)

type paper_numbers = {
  p_cpu_share : float;  (** Table I "% CPU time" *)
  p_fp_vars : int;  (** Table I "# FP vars" *)
  p_variants : int;  (** Table II "Total" *)
  p_pass_pct : float;
  p_fail_pct : float;
  p_timeout_pct : float;
  p_error_pct : float;
  p_best_speedup : float;  (** Table II "Speedup" *)
}

type t = {
  name : string;  (** CLI identifier: "funarc", "mpas", "adcirc", "mom6" *)
  title : string;  (** display name, e.g. "MPAS-A" *)
  description : string;
  source : string;  (** the Fortran program *)
  target_module : string;  (** hotspot module (Table I "Targeted Module") *)
  target_procs : string list;
      (** procedures whose variables form the search space and whose
          exclusive time is the hotspot time; MPAS-A targets the work
          routines, not the [atm_srk3] driver, so data passed from driver
          to work routine crosses the tuning boundary as in the paper *)
  exclude_atoms : string list;  (** variables excluded from the search space *)
  metric_key : string;  (** record key of the per-step correctness metric *)
  metric_desc : string;
  threshold : threshold;
  noise_rel_std : float;  (** injected run-to-run jitter (1 % / 1 % / 9 %) *)
  timeout_factor : float;  (** variant budget = factor × baseline cost (3.0) *)
  fig6_procs : string list;  (** procedures plotted in Fig. 6 *)
  max_variants : int option;  (** simulated 12-hour cap (MOM6's truncation) *)
  paper : paper_numbers option;  (** None for funarc (not in Table I/II) *)
}

val funarc : t
val mpas : t
val adcirc : t
val mom6 : t

val lulesh : t
(** The Sec.-I contrast case: a hotspot-dominated proxy application where
    the canonical FPPT cycle works cleanly — not part of Table I/II. *)

val mpas_joint : t
(** The joint multi-hotspot scenario: MPAS-A with the [atm_srk3] driver
    included in the search space, so cross-procedure assignments carry
    their boundary-cast cost inside the space. The whole-model campaign
    the sharded scheduler targets; not part of Table I/II. *)

val all : t list
(** The three weather/climate models, in paper order ([lulesh] and
    [funarc] are separate). *)

val find : string -> t
(** Lookup by [name] (funarc included). Raises [Not_found]. *)
