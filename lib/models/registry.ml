type threshold =
  | Fixed of float
  | From_uniform32 of float

type paper_numbers = {
  p_cpu_share : float;
  p_fp_vars : int;
  p_variants : int;
  p_pass_pct : float;
  p_fail_pct : float;
  p_timeout_pct : float;
  p_error_pct : float;
  p_best_speedup : float;
}

type t = {
  name : string;
  title : string;
  description : string;
  source : string;
  target_module : string;
  target_procs : string list;
  exclude_atoms : string list;
  metric_key : string;
  metric_desc : string;
  threshold : threshold;
  noise_rel_std : float;
  timeout_factor : float;
  fig6_procs : string list;
  max_variants : int option;
  paper : paper_numbers option;
}

let funarc =
  {
    name = "funarc";
    title = "funarc";
    description = "arc-length motivating example (Sec. II-B); 2^8 brute-force space";
    source = Funarc.source ();
    target_module = "funarc_mod";
    target_procs = [ "fun"; "funarc" ];
    exclude_atoms = [ "res" ];
    metric_key = "result";
    metric_desc = "final arc length";
    threshold = Fixed 1.2e-7;
    (* The paper's Fig.-2 walkthrough budget is 4e-4 at n = one million
       subintervals; at our n = 1000 the error scale shrinks accordingly,
       and this budget bisects the frontier the same way. *)
    noise_rel_std = 0.0;
    timeout_factor = 3.0;
    fig6_procs = [ "fun"; "funarc" ];
    max_variants = None;
    paper = None;
  }

let mpas =
  {
    name = "mpas";
    title = "MPAS-A";
    description = "atmosphere dynamical-core proxy; atm_time_integration work routines";
    source = Mpas.source ();
    target_module = "atm_time_integration";
    target_procs = Mpas.target_procs;
    exclude_atoms = [];
    metric_key = "ke";
    metric_desc = "max cell kinetic energy per step (L2 of rel. errors over time)";
    threshold = From_uniform32 1.0;  (* exactly the supported 32-bit build's error *)
    noise_rel_std = 0.01;
    timeout_factor = 3.0;
    fig6_procs =
      [
        "atm_compute_dyn_tend_work";
        "atm_advance_acoustic_step_work";
        "atm_recover_large_step_variables_work";
        "flux4";
        "flux3";
      ];
    max_variants = Some 150;
    paper =
      Some
        {
          p_cpu_share = 15.0;
          p_fp_vars = 445;
          p_variants = 48;
          p_pass_pct = 37.5;
          p_fail_pct = 56.2;
          p_timeout_pct = 6.3;
          p_error_pct = 0.0;
          p_best_speedup = 1.95;
        };
  }

let adcirc =
  {
    name = "adcirc";
    title = "ADCIRC";
    description = "coastal ocean proxy; itpackv iterative solver hotspot";
    source = Adcirc.source ();
    target_module = "itpackv";
    target_procs = Adcirc.target_procs;
    exclude_atoms = [];
    metric_key = "eta";
    metric_desc = "extreme water-surface elevation per step (L2 of rel. errors over time)";
    threshold = Fixed 5.0e-8;
    (* The paper's expert threshold is 1e-1 on ADCIRC's grid-wide metric;
       our proxy's elevation errors live at the single-precision floor
       (~1e-7), so the equivalent "reject unconverged solves" criterion is
       a tight regression tolerance below that floor. *)
    noise_rel_std = 0.01;
    timeout_factor = 3.0;
    fig6_procs = [ "jcg"; "pjac"; "peror" ];
    max_variants = Some 200;
    paper =
      Some
        {
          p_cpu_share = 12.0;
          p_fp_vars = 468;
          p_variants = 74;
          p_pass_pct = 36.4;
          p_fail_pct = 33.8;
          p_timeout_pct = 0.0;
          p_error_pct = 29.7;
          p_best_speedup = 1.12;
        };
  }

let mom6 =
  {
    name = "mom6";
    title = "MOM6";
    description = "layered ocean proxy; MOM_continuity_PPM hotspot with dimensional rescaling";
    source = Mom6.source ();
    target_module = "mom_continuity_ppm";
    target_procs = Mom6.target_procs;
    exclude_atoms = [];
    metric_key = "cfl";
    metric_desc = "max CFL number per step (L2 of rel. errors over time)";
    threshold = Fixed 3.0e-8;
    (* The paper's expert threshold is 2.5e-1 on MOM6's CFL metric at their
       grid scale; our proxy's CFL errors sit at the single-precision floor
       (~1e-7 relative), so the equivalent criterion separating "solver
       still healthy" from "transport visibly corrupted" is placed just
       below that floor. *)
    noise_rel_std = 0.09;
    timeout_factor = 3.0;
    fig6_procs =
      [ "zonal_mass_flux"; "zonal_flux_adjust"; "zonal_flux_layer"; "ppm_reconstruction";
        "meridional_flux_adjust" ];
    max_variants = Some 150;  (* the simulated 12-hour cut-off: the search does not finish *)
    paper =
      Some
        {
          p_cpu_share = 9.0;
          p_fp_vars = 351;
          p_variants = 858;
          p_pass_pct = 17.2;
          p_fail_pct = 31.0;
          p_timeout_pct = 0.0;
          p_error_pct = 51.7;
          p_best_speedup = 1.04;
        };
  }

let lulesh =
  {
    name = "lulesh";
    title = "LULESH";
    description =
      "proxy-application contrast case (Sec. I): hotspot-dominated Lagrangian hydro mini-app";
    source = Lulesh.source ();
    target_module = "lulesh_mod";
    target_procs = Lulesh.target_procs;
    exclude_atoms = [];
    metric_key = "etot";
    metric_desc = "total energy per step (L2 of rel. errors over time)";
    threshold = Fixed 1.0e-5;
    noise_rel_std = 0.01;
    timeout_factor = 3.0;
    fig6_procs = [ "calc_force_for_nodes"; "calc_energy_for_elems" ];
    max_variants = Some 120;
    paper = None;  (* not part of the case study; the intro's contrast case *)
  }

(* The joint multi-hotspot scenario: the same MPAS-A proxy, but the
   search space spans every atm_time_integration procedure *including*
   the atm_srk3 driver, so driver↔work-routine boundary casts are inside
   the space rather than fixed at its edge. This is the whole-model
   campaign the shard scheduler exists for: one cross-procedure
   assignment per variant, judged on whole-model time. *)
let mpas_joint =
  {
    mpas with
    name = "mpas_joint";
    title = "MPAS-A (joint)";
    description =
      "joint multi-hotspot campaign: all atm_time_integration work routines plus the \
       atm_srk3 driver in one cross-procedure search space";
    target_procs = Mpas.target_procs @ [ "atm_srk3" ];
    (* With the driver inside the space the all-lowered variant *is* the
       supported uniform-32-bit build, so MPAS-A's From_uniform32 1.0
       threshold would accept it immediately and end the search in two
       evaluations. Halving the budget makes the joint campaign dig for
       the subset whose boundary casts it can actually afford. *)
    threshold = From_uniform32 0.5;
    max_variants = Some 180;
    paper = None;  (* a scaling scenario, not a paper table row *)
  }

let all = [ mpas; adcirc; mom6 ]

let find name =
  match name with
  | "funarc" -> funarc
  | "mpas" | "mpas-a" -> mpas
  | "mpas_joint" | "mpas-joint" -> mpas_joint
  | "adcirc" -> adcirc
  | "mom6" -> mom6
  | "lulesh" -> lulesh
  | _ -> raise Not_found
