type stats = {
  hits : int;
  misses : int;
  shared : int;
  live : int;
  appends : int;
}

type t = {
  mutable recs : Variant.record list;  (* reversed *)
  mutable n : int;
  cache : (string, Variant.measurement) Hashtbl.t;
  max_variants : int option;
  lock : Mutex.t;
  sink : (Variant.record -> unit) option;
  shared_lookup : (Transform.Assignment.t -> Variant.measurement option) option;
  on_shared : (Variant.record -> unit) option;
  mutable hits : int;  (* evaluate calls served from cache *)
  mutable misses : int;  (* fresh evaluations committed *)
  mutable shared : int;  (* commits served by the external shared lookup *)
  mutable appends : int;  (* sink invocations *)
}

exception Budget_exhausted

let create ?max_variants ?shared_lookup ?on_shared ?sink () =
  {
    recs = [];
    n = 0;
    cache = Hashtbl.create 64;
    max_variants;
    lock = Mutex.create ();
    sink;
    shared_lookup;
    on_shared;
    hits = 0;
    misses = 0;
    shared = 0;
    appends = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find_cached t asg =
  let key = Transform.Assignment.signature asg in
  locked t (fun () -> Hashtbl.find_opt t.cache key)

let check_budget t =
  match t.max_variants with
  | Some cap when t.n >= cap -> raise Budget_exhausted
  | Some _ | None -> ()

(* Commit one record under the lock. The sink fires here, after the cache
   and record list are updated but before the lock is released, so journal
   lines carry consecutive commit indices in record-list order for every
   worker count. A sink exception (e.g. a simulated job preemption)
   propagates to the caller with the commit already durable. A commit
   served by the external shared lookup counts as [shared] rather than a
   miss and additionally fires [on_shared] just before the sink — still
   under the lock, so a journaling sink can annotate the record's
   provenance atomically with its append. *)
let commit ?(shared = false) t key asg m =
  check_budget t;
  t.n <- t.n + 1;
  if shared then t.shared <- t.shared + 1 else t.misses <- t.misses + 1;
  Hashtbl.add t.cache key m;
  let r = { Variant.index = t.n; asg; meas = m } in
  t.recs <- r :: t.recs;
  if shared then Option.iter (fun f -> f r) t.on_shared;
  (match t.sink with
  | Some f ->
    t.appends <- t.appends + 1;
    f r
  | None -> ());
  m

let evaluate t ~f asg =
  let key = Transform.Assignment.signature asg in
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.cache key with
        | Some _ as m ->
          t.hits <- t.hits + 1;
          m
        | None ->
          (* cache hits are free: the budget only gates fresh evaluations *)
          check_budget t;
          None)
  in
  match cached with
  | Some m -> m
  | None -> (
    (* the cross-campaign shared lookup is consulted outside the lock
       (it takes its own mutex); a hit commits as a normal record — the
       books, the budget and the sink all see it — but costs no live
       evaluation and is classified [shared], not a miss *)
    let shared_m =
      match t.shared_lookup with None -> None | Some look -> look asg
    in
    match shared_m with
    | Some m ->
      locked t (fun () ->
          match Hashtbl.find_opt t.cache key with
          | Some m' ->
            (* another caller committed the same variant first *)
            t.hits <- t.hits + 1;
            m'
          | None -> commit ~shared:true t key asg m)
    | None -> (
      (* run [f] outside the lock: concurrent callers proceed in parallel *)
      let m = f asg in
      locked t (fun () ->
          match Hashtbl.find_opt t.cache key with
          | Some m' ->
            t.hits <- t.hits + 1;
            m'
          | None -> commit t key asg m)))

let preload t records =
  locked t (fun () ->
      List.iter
        (fun (r : Variant.record) ->
          let key = Transform.Assignment.signature r.Variant.asg in
          if not (Hashtbl.mem t.cache key) then begin
            t.n <- t.n + 1;
            Hashtbl.add t.cache key r.Variant.meas;
            t.recs <- { r with Variant.index = t.n } :: t.recs
          end)
        records)

let records t = locked t (fun () -> List.rev t.recs)
let count t = locked t (fun () -> t.n)

let stats t =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses; shared = t.shared; live = Hashtbl.length t.cache;
        appends = t.appends })

let clear t =
  locked t (fun () ->
      t.recs <- [];
      t.n <- 0;
      t.hits <- 0;
      t.misses <- 0;
      t.shared <- 0;
      t.appends <- 0;
      Hashtbl.reset t.cache)
