type t = {
  mutable recs : Variant.record list;  (* reversed *)
  mutable n : int;
  cache : (string, Variant.measurement) Hashtbl.t;
  max_variants : int option;
  lock : Mutex.t;
}

exception Budget_exhausted

let create ?max_variants () =
  { recs = []; n = 0; cache = Hashtbl.create 64; max_variants; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find_cached t asg =
  let key = Transform.Assignment.signature asg in
  locked t (fun () -> Hashtbl.find_opt t.cache key)

let check_budget t =
  match t.max_variants with
  | Some cap when t.n >= cap -> raise Budget_exhausted
  | Some _ | None -> ()

let evaluate t ~f asg =
  let key = Transform.Assignment.signature asg in
  let cached =
    locked t (fun () ->
        match Hashtbl.find_opt t.cache key with
        | Some _ as m -> m
        | None ->
          (* cache hits are free: the budget only gates fresh evaluations *)
          check_budget t;
          None)
  in
  match cached with
  | Some m -> m
  | None -> (
    (* run [f] outside the lock: concurrent callers proceed in parallel *)
    let m = f asg in
    locked t (fun () ->
        match Hashtbl.find_opt t.cache key with
        | Some m' -> m'  (* another caller committed the same variant first *)
        | None ->
          check_budget t;
          t.n <- t.n + 1;
          Hashtbl.add t.cache key m;
          t.recs <- { Variant.index = t.n; asg; meas = m } :: t.recs;
          m))

let records t = locked t (fun () -> List.rev t.recs)
let count t = locked t (fun () -> t.n)

let clear t =
  locked t (fun () ->
      t.recs <- [];
      t.n <- 0;
      Hashtbl.reset t.cache)
