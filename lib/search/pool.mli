(** Fixed-size domain pool for parallel variant evaluation.

    The paper's campaigns evaluate every variant as an independent cluster
    job ("one node per variant", Sec. IV-A); this pool is the laptop-scale
    equivalent: a fixed set of OCaml 5 domains consuming a bounded work
    queue. The searches submit each ddmin round's candidates speculatively
    ({!Ddmin.minimize}'s [prefetch]) and commit results in sequential
    order, so parallelism changes wall clock only — never the trajectory.

    {!map} preserves submission order in its result list and re-raises the
    first (by submission order) exception a task threw, after the whole
    batch has drained. The pool is only driven from the domain that
    created it; the mapped function must be re-entrant. *)

type t

val create : workers:int -> t
(** Spawns [workers] domains ([workers >= 1]; raises [Invalid_argument]
    otherwise) blocked on a bounded queue of [2 * workers] tasks. *)

val size : t -> int
(** Number of worker domains. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] evaluates [f] over [xs] on the worker domains and
    returns the results in the order of [xs]. Blocks until every task has
    finished; if any task raised, the first such exception (in submission
    order) is re-raised — the pool remains usable. *)

val shutdown : t -> unit
(** Drains the queue, terminates and joins the workers. Idempotent;
    submitting to a shut-down pool raises [Invalid_argument]. *)

val with_pool : workers:int -> (t -> 'a) -> 'a
(** [with_pool ~workers f] runs [f] with a fresh pool, shutting it down
    on exit (normal or exceptional). *)

val default_workers : unit -> int
(** [Domain.recommended_domain_count () - 1] (never negative): one worker
    per spare core, keeping the submitting domain responsive. *)
