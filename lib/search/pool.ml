type task = unit -> unit

type t = {
  queue : task Queue.t;
  capacity : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
  size : int;
}

let size t = t.size

let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.nonempty t.mutex
    done;
    (* a closed pool still drains what was already queued *)
    if Queue.is_empty t.queue then Mutex.unlock t.mutex
    else begin
      let task = Queue.pop t.queue in
      Condition.signal t.nonfull;
      Mutex.unlock t.mutex;
      task ();
      loop ()
    end
  in
  loop ()

let create ~workers =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let t =
    {
      queue = Queue.create ();
      capacity = 2 * workers;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      nonfull = Condition.create ();
      closed = false;
      domains = [];
      size = workers;
    }
  in
  t.domains <- List.init workers (fun _ -> Domain.spawn (worker t));
  t

let submit t task =
  Mutex.lock t.mutex;
  while Queue.length t.queue >= t.capacity && not t.closed do
    Condition.wait t.nonfull t.mutex
  done;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let map t f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let done_mutex = Mutex.create () in
    let all_done = Condition.create () in
    let remaining = ref n in
    Array.iteri
      (fun i x ->
        submit t (fun () ->
            let r = match f x with v -> Ok v | exception e -> Error e in
            Mutex.lock done_mutex;
            results.(i) <- Some r;
            decr remaining;
            if !remaining = 0 then Condition.signal all_done;
            Mutex.unlock done_mutex))
      arr;
    Mutex.lock done_mutex;
    while !remaining > 0 do
      Condition.wait all_done done_mutex
    done;
    Mutex.unlock done_mutex;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  end

let shutdown t =
  Mutex.lock t.mutex;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Condition.broadcast t.nonfull;
  Mutex.unlock t.mutex;
  if not was_closed then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ~workers f =
  let t = create ~workers in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_workers () = max 0 (Domain.recommended_domain_count () - 1)
