(** Evaluated mixed-precision variants and Table-II accounting.

    Every dynamically evaluated variant lands in one of the four outcome
    classes of Table II: it {e passed} (ran to completion, met the error
    threshold), {e failed} the correctness check, {e timed out} (3 × the
    baseline budget), or died with a {e runtime error}. *)

type status = Pass | Fail | Timeout | Error

val status_to_string : status -> string
val status_of_string : string -> status option
(** Inverse of {!status_to_string} (used by the campaign journal codec). *)

val pp_status : Format.formatter -> status -> unit

type measurement = {
  status : status;
  speedup : float;  (** Eq. 1, against the 64-bit baseline; 0 when not measurable *)
  rel_error : float;  (** the model's scalar correctness metric vs baseline *)
  hotspot_time : float;  (** modeled CPU time inside the targeted module *)
  model_time : float;  (** modeled CPU time of the whole run *)
  proc_stats : (string * float * int) list;
      (** per-procedure (inclusive time, call count) — Fig. 6's raw data *)
  casting_share : float;
      (** fraction of the run's modeled cost spent on kind conversions —
          the paper's "40 % of the CPU time is spent on casting overhead"
          quantity (Sec. IV-B, MOM6 variant 58) *)
  detail : string;  (** diagnostic message (trap reason, ...) *)
}

type record = {
  index : int;  (** evaluation order, 1-based ("variant 42 of 74") *)
  asg : Transform.Assignment.t;
  meas : measurement;
}

val fraction_lowered : record -> float
(** Convenience projection for the Fig.-5 x-clustering. *)

type summary = {
  total : int;
  pass_pct : float;
  fail_pct : float;
  timeout_pct : float;
  error_pct : float;
  best_speedup : float;  (** best Eq.-1 speedup among passing variants *)
}

val summarize : record list -> summary
(** One Table-II row. *)

val frontier : record list -> record list
(** The optimal (Pareto) frontier in speedup–error space among passing
    variants: variants not dominated by another with both higher speedup
    and lower error. Sorted by increasing error. *)

val best : record list -> record option
(** Highest-speedup passing variant. *)
