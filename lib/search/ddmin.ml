let partition n xs =
  let len = List.length xs in
  let n = max 1 (min n len) in
  let base = len / n and extra = len mod n in
  let rec take k xs acc =
    if k = 0 then (List.rev acc, xs)
    else
      match xs with
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) rest (x :: acc)
  in
  let rec go i xs acc =
    if i = n then List.rev acc
    else begin
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest = take size xs [] in
      go (i + 1) rest (chunk :: acc)
    end
  in
  List.filter (fun c -> c <> []) (go 0 xs [])

type 'a candidate = Chunk of 'a list | Complement of 'a list

let subset = function Chunk s | Complement s -> s

let minimize ?(order = fun (candidates : 'a candidate list) -> candidates)
    ?(prefetch = fun _ -> ()) ~test xs =
  if test [] then []
  else begin
    let diff big small = List.filter (fun x -> not (List.memq x small)) big in
    let rec ddmin cur n =
      let chunks = partition n cur in
      let complements =
        List.filter (fun comp -> comp <> [] && comp <> cur)
          (List.map (fun c -> diff cur c) chunks)
      in
      (* merged round: chunks then complements in ONE candidate list, so a
         reordering [order] can demote a predicted-fail chunk behind the
         complements; the canonical order below replays the classic
         chunks-first sequence exactly *)
      let candidates =
        order
          (List.map (fun c -> Chunk c) chunks
          @ List.map (fun c -> Complement c) complements)
      in
      (* speculative batching: announce the whole round's candidates in
         the exact order the sequential algorithm would test them, before
         the first [test] call — results are then consumed sequentially,
         so the trajectory is independent of how [prefetch] computes *)
      prefetch (List.map subset candidates);
      match List.find_opt (fun c -> test (subset c)) candidates with
      | Some (Chunk chunk) -> if List.length chunk = 1 then chunk else ddmin chunk 2
      | Some (Complement comp) -> ddmin comp (max (n - 1) 2)
      | None ->
        if n < List.length cur then ddmin cur (min (List.length cur) (2 * n))
        else cur (* singleton granularity exhausted: 1-minimal *)
    in
    ddmin xs 2
  end
