(** The delta-debugging search for precision tuning (Sec. III-B).

    This is the Precimonious adaptation of Zeller-Hildebrandt ddmin
    [2, 33], the most canonical FPPT search strategy, used as a baseline
    or core component throughout the literature. It searches for a
    {e 1-minimal} variant: one possessing the smallest set of 64-bit
    variables for which lowering any one of them violates the correctness
    criteria or produces a variant less performant than required.

    The algorithm minimizes the {e high-precision} set [H] (initially all
    atoms, i.e. the baseline). A candidate [H] "passes" when the variant
    lowering everything outside [H] finishes, meets the error threshold
    and clears the performance floor. ddmin partitions [H] into [n]
    chunks, tries each chunk and each complement, doubles granularity
    when stuck, and stops when [H] is 1-minimal: every single-atom
    removal has been tried and fails. Average-case O(n log n) evaluations,
    worst-case O(n²). *)

type config = {
  error_threshold : float;  (** correctness criterion (model-specific, Sec. IV-A) *)
  perf_floor : float;
      (** acceptance floor for Eq.-1 speedup; [1.0] = "not less performant
          than the baseline". A value slightly below 1 tolerates noise. *)
}

type result = {
  minimal : Transform.Assignment.t;  (** the 1-minimal variant found *)
  high_set : Transform.Assignment.atom list;  (** atoms left at 64 bits *)
  finished : bool;  (** [false] when the variant budget ran out first *)
  evaluations : int;  (** distinct variants dynamically evaluated *)
}

(** The predictive-search hook (DESIGN.md §13). [note] is called after
    every [test] — once per consumed evaluation, in committed-record
    order, memo hits and journal replays included (the implementation
    deduplicates by signature, so resumed runs rebuild identical
    evidence). [round] runs once per ddmin round before any [demote]
    query (the place to refit per-round models); [demote asg = true]
    sends the candidate behind every kept one, in a stable split. All
    three must depend only on the evidence sequence and the assignment,
    never on wall clock or scheduling, to keep the trajectory
    deterministic across workers, shards and resume. *)
type ranker = {
  note : Transform.Assignment.t -> Variant.measurement -> unit;
  round : unit -> unit;
  demote : Transform.Assignment.t -> bool;
}

val search :
  ?pool:Pool.t ->
  ?shard:Shard.t ->
  ?cost:(Variant.measurement -> float) ->
  ?affinity:(Transform.Assignment.t -> string) ->
  ?ranker:ranker ->
  atoms:Transform.Assignment.atom list ->
  trace:Trace.t ->
  evaluate:(Transform.Assignment.t -> Variant.measurement) ->
  config ->
  result
(** All evaluations go through [trace] (memoized); pass a
    [?max_variants]-bounded trace to emulate the paper's 12-hour job
    limit. On {!Trace.Budget_exhausted} the best accepted assignment seen
    so far is returned with [finished = false].

    With [pool], each ddmin round's chunk and complement candidates are
    evaluated speculatively in parallel and consumed in sequential order
    ({!Speculate}): [records], [minimal] and the budget cut-off are
    bit-identical to the sequential run — only wall clock changes.
    [evaluate] must then be re-entrant.

    [shard] runs those rounds on a work-stealing {!Shard} scheduler
    instead (and advances its simulated cluster clock using [cost]);
    the same bit-identity argument applies at any shards × workers
    grid.

    [ranker] steers each merged ddmin round: candidates its [demote]
    predicts will fail are moved (stably) behind the rest, so passing
    candidates are found with fewer evaluations. A round still contains
    exactly the classic candidates — only the order within the round
    changes — but a different first passer redirects the recursion, so
    1-minimality is preserved while the particular minimal set found may
    in principle differ ([bench --predict] checks it does not on the
    registered campaigns). Unlike [pool], [ranker] changes the
    exploration order; see {!type:ranker} for the determinism
    contract. *)

val accepted : config -> Variant.measurement -> bool
(** The oracle: passes, error within threshold, speedup above the floor. *)

val candidate_order :
  variant_of:('s list -> Transform.Assignment.t) ->
  ranker option ->
  ('s Ddmin.candidate list -> 's Ddmin.candidate list) option
(** The stable keep/demote reorder a [ranker] induces on a merged ddmin
    round ([None] = classic order). Shared with {!Hierarchical.search}. *)
