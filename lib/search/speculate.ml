(* Speculative batch evaluation shared by the batched searches.

   A ddmin round announces its candidates via [prefetch]; with a pool
   (or a sharded scheduler) they are evaluated in parallel into
   [results] (raw [evaluate] calls, no trace, no budget). The search
   then consumes candidates in the sequential order through [evaluate],
   which commits to the trace with the speculative result when one
   exists — so records, budget accounting and the trajectory are
   identical to a sequential run. Results are kept across rounds:
   speculation wasted in one round can still pay off later. Only
   [prefetch]'s workers run concurrently; this table and the trace
   commits stay on the submitting domain.

   With a shard scheduler, each affinity group becomes one shard task
   whose simulated cost is the sum of its members' costs, and on-demand
   evaluations that bypassed a batch are accounted serially — the
   sharded cluster clock advances exactly as if the batch had run on
   the simulated shards×workers grid. A scheduler with a single slot
   disables speculation entirely: the classic sequential trajectory,
   with every fresh evaluation accounted serially. *)

type t = {
  pool : Pool.t option;
  shard : Shard.t option;
  cost : (Variant.measurement -> float) option;
  trace : Trace.t;
  evaluate : Transform.Assignment.t -> Variant.measurement;
  affinity : (Transform.Assignment.t -> string) option;
  results : (string, Variant.measurement) Hashtbl.t;
}

let create ?pool ?shard ?cost ?affinity ~trace ~evaluate () =
  { pool; shard; cost; trace; evaluate; affinity; results = Hashtbl.create 64 }

let cost_of t m = match t.cost with Some c -> c m | None -> 0.0

(* Partition a batch into same-affinity runs, preserving first-seen order
   of groups and batch order within each. Candidates that share an
   affinity key evaluate to the same raw outcome downstream, so running
   them on one worker back to back lets the later ones reuse the first's
   work instead of racing to recompute it on other workers. *)
let affinity_groups aff todo =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun ((_, asg) as item) ->
      let a = aff asg in
      match Hashtbl.find_opt tbl a with
      | Some r -> r := item :: !r
      | None ->
        let r = ref [ item ] in
        Hashtbl.add tbl a r;
        order := r :: !order)
    todo;
  List.rev_map (fun r -> List.rev !r) !order

let fresh_batch t asgs =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun asg ->
      let key = Transform.Assignment.signature asg in
      if
        Hashtbl.mem t.results key || Hashtbl.mem seen key
        || Trace.find_cached t.trace asg <> None
      then None
      else begin
        Hashtbl.add seen key ();
        Some (key, asg)
      end)
    asgs

let groups_of t todo =
  match t.affinity with
  | None -> List.map (fun item -> [ item ]) todo
  | Some aff -> affinity_groups aff todo

let record_group_results groups evaluated t =
  List.iter2
    (List.iter2 (fun (key, _) m -> Hashtbl.replace t.results key m))
    groups evaluated

let prefetch t asgs =
  match (t.shard, t.pool) with
  | Some sh, _ when Shard.slots sh > 1 -> (
    match fresh_batch t asgs with
    | [] -> ()
    | todo ->
      let groups = groups_of t todo in
      let evaluated =
        Shard.map sh
          ~cost:(fun ms -> List.fold_left (fun acc m -> acc +. cost_of t m) 0.0 ms)
          (fun group -> List.map (fun (_, asg) -> t.evaluate asg) group)
          groups
      in
      record_group_results groups evaluated t)
  | Some _, _ -> ()  (* single simulated slot: no speculation *)
  | None, Some pool -> (
    match fresh_batch t asgs with
    | [] -> ()
    | todo ->
      let groups = groups_of t todo in
      let evaluated =
        Pool.map pool (fun group -> List.map (fun (_, asg) -> t.evaluate asg) group) groups
      in
      record_group_results groups evaluated t)
  | None, None -> ()

let evaluate t asg =
  Trace.evaluate t.trace
    ~f:(fun asg ->
      match Hashtbl.find_opt t.results (Transform.Assignment.signature asg) with
      | Some m -> m
      | None ->
        let m = t.evaluate asg in
        (* a fresh evaluation outside any batch runs alone on the
           simulated cluster *)
        Option.iter (fun sh -> Shard.serial sh (cost_of t m)) t.shard;
        m)
    asg
