(* Speculative batch evaluation shared by the batched searches.

   A ddmin round announces its candidates via [prefetch]; with a pool
   they are evaluated in parallel into [results] (raw [evaluate] calls,
   no trace, no budget). The search then consumes candidates in the
   sequential order through [evaluate], which commits to the trace with
   the speculative result when one exists — so records, budget accounting
   and the trajectory are identical to a sequential run. Results are kept
   across rounds: speculation wasted in one round can still pay off
   later. Only [prefetch]'s pool workers run concurrently; this table and
   the trace commits stay on the submitting domain. *)

type t = {
  pool : Pool.t option;
  trace : Trace.t;
  evaluate : Transform.Assignment.t -> Variant.measurement;
  affinity : (Transform.Assignment.t -> string) option;
  results : (string, Variant.measurement) Hashtbl.t;
}

let create ?pool ?affinity ~trace ~evaluate () =
  { pool; trace; evaluate; affinity; results = Hashtbl.create 64 }

(* Partition a batch into same-affinity runs, preserving first-seen order
   of groups and batch order within each. Candidates that share an
   affinity key evaluate to the same raw outcome downstream, so running
   them on one worker back to back lets the later ones reuse the first's
   work instead of racing to recompute it on other workers. *)
let affinity_groups aff todo =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun ((_, asg) as item) ->
      let a = aff asg in
      match Hashtbl.find_opt tbl a with
      | Some r -> r := item :: !r
      | None ->
        let r = ref [ item ] in
        Hashtbl.add tbl a r;
        order := r :: !order)
    todo;
  List.rev_map (fun r -> List.rev !r) !order

let prefetch t asgs =
  match t.pool with
  | None -> ()
  | Some pool ->
    let seen = Hashtbl.create 16 in
    let todo =
      List.filter_map
        (fun asg ->
          let key = Transform.Assignment.signature asg in
          if
            Hashtbl.mem t.results key || Hashtbl.mem seen key
            || Trace.find_cached t.trace asg <> None
          then None
          else begin
            Hashtbl.add seen key ();
            Some (key, asg)
          end)
        asgs
    in
    if todo <> [] then begin
      let groups =
        match t.affinity with
        | None -> List.map (fun item -> [ item ]) todo
        | Some aff -> affinity_groups aff todo
      in
      let evaluated =
        Pool.map pool (fun group -> List.map (fun (_, asg) -> t.evaluate asg) group) groups
      in
      List.iter2
        (List.iter2 (fun (key, _) m -> Hashtbl.replace t.results key m))
        groups evaluated
    end

let evaluate t asg =
  Trace.evaluate t.trace
    ~f:(fun asg ->
      match Hashtbl.find_opt t.results (Transform.Assignment.signature asg) with
      | Some m -> m
      | None -> t.evaluate asg)
    asg
