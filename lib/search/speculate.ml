(* Speculative batch evaluation shared by the batched searches.

   A ddmin round announces its candidates via [prefetch]; with a pool
   they are evaluated in parallel into [results] (raw [evaluate] calls,
   no trace, no budget). The search then consumes candidates in the
   sequential order through [evaluate], which commits to the trace with
   the speculative result when one exists — so records, budget accounting
   and the trajectory are identical to a sequential run. Results are kept
   across rounds: speculation wasted in one round can still pay off
   later. Only [prefetch]'s pool workers run concurrently; this table and
   the trace commits stay on the submitting domain. *)

type t = {
  pool : Pool.t option;
  trace : Trace.t;
  evaluate : Transform.Assignment.t -> Variant.measurement;
  results : (string, Variant.measurement) Hashtbl.t;
}

let create ?pool ~trace ~evaluate () =
  { pool; trace; evaluate; results = Hashtbl.create 64 }

let prefetch t asgs =
  match t.pool with
  | None -> ()
  | Some pool ->
    let seen = Hashtbl.create 16 in
    let todo =
      List.filter_map
        (fun asg ->
          let key = Transform.Assignment.signature asg in
          if
            Hashtbl.mem t.results key || Hashtbl.mem seen key
            || Trace.find_cached t.trace asg <> None
          then None
          else begin
            Hashtbl.add seen key ();
            Some (key, asg)
          end)
        asgs
    in
    if todo <> [] then
      List.iter2
        (fun (key, _) m -> Hashtbl.replace t.results key m)
        todo
        (Pool.map pool (fun (_, asg) -> t.evaluate asg) todo)

let evaluate t asg =
  Trace.evaluate t.trace
    ~f:(fun asg ->
      match Hashtbl.find_opt t.results (Transform.Assignment.signature asg) with
      | Some m -> m
      | None -> t.evaluate asg)
    asg
