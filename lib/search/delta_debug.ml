type config = {
  error_threshold : float;
  perf_floor : float;
}

type result = {
  minimal : Transform.Assignment.t;
  high_set : Transform.Assignment.atom list;
  finished : bool;
  evaluations : int;
}

let accepted cfg (m : Variant.measurement) =
  m.Variant.status = Variant.Pass
  && m.Variant.rel_error <= cfg.error_threshold
  && m.Variant.speedup >= cfg.perf_floor

let search ?pool ?shard ?cost ?affinity ~atoms ~trace ~evaluate cfg =
  let module A = Transform.Assignment in
  let diff big small = List.filter (fun a -> not (List.memq a small)) big in
  let variant_of high = A.of_lowered atoms ~lowered:(diff atoms high) in
  let spec = Speculate.create ?pool ?shard ?cost ?affinity ~trace ~evaluate () in
  (* best accepted assignment seen so far, for budget-exhausted returns *)
  let best_high = ref atoms in
  let test high =
    let m = Speculate.evaluate spec (variant_of high) in
    let ok = accepted cfg m in
    if ok && List.length high < List.length !best_high then best_high := high;
    ok
  in
  let prefetch highs = Speculate.prefetch spec (List.map variant_of highs) in
  let finished = ref true in
  let final_high =
    try
      if not (test atoms) then
        (* the baseline itself fails the oracle (can happen when the perf
           floor exceeds 1): fall back to reporting it *)
        atoms
      else Ddmin.minimize ~prefetch ~test atoms
    with Trace.Budget_exhausted ->
      finished := false;
      !best_high
  in
  {
    minimal = variant_of final_high;
    high_set = final_high;
    finished = !finished;
    evaluations = Trace.count trace;
  }
