type config = {
  error_threshold : float;
  perf_floor : float;
}

type result = {
  minimal : Transform.Assignment.t;
  high_set : Transform.Assignment.atom list;
  finished : bool;
  evaluations : int;
}

type ranker = {
  note : Transform.Assignment.t -> Variant.measurement -> unit;
  round : unit -> unit;
  demote : Transform.Assignment.t -> bool;
}

let accepted cfg (m : Variant.measurement) =
  m.Variant.status = Variant.Pass
  && m.Variant.rel_error <= cfg.error_threshold
  && m.Variant.speedup >= cfg.perf_floor

(* Stable keep/demote split of a ddmin round's merged candidate list:
   [demote] is consulted once per candidate after [round] refreshes any
   per-round state; survivors keep the canonical chunks-then-complements
   order, demoted candidates follow in their canonical order. Evidence
   accrues in committed-record order ({!Speculate} consumption), so the
   resulting trajectory is deterministic at any worker/shard count. *)
let candidate_order ~variant_of ranker =
  Option.map
    (fun rk cands ->
      rk.round ();
      let keep, demoted =
        List.partition (fun c -> not (rk.demote (variant_of (Ddmin.subset c)))) cands
      in
      keep @ demoted)
    ranker

let search ?pool ?shard ?cost ?affinity ?ranker ~atoms ~trace ~evaluate cfg =
  let module A = Transform.Assignment in
  let diff big small = List.filter (fun a -> not (List.memq a small)) big in
  let variant_of high = A.of_lowered atoms ~lowered:(diff atoms high) in
  let order = candidate_order ~variant_of ranker in
  let spec = Speculate.create ?pool ?shard ?cost ?affinity ~trace ~evaluate () in
  (* best accepted assignment seen so far, for budget-exhausted returns *)
  let best_high = ref atoms in
  let test high =
    let asg = variant_of high in
    let m = Speculate.evaluate spec asg in
    Option.iter (fun rk -> rk.note asg m) ranker;
    let ok = accepted cfg m in
    if ok && List.length high < List.length !best_high then best_high := high;
    ok
  in
  let prefetch highs = Speculate.prefetch spec (List.map variant_of highs) in
  let finished = ref true in
  let final_high =
    try
      if not (test atoms) then
        (* the baseline itself fails the oracle (can happen when the perf
           floor exceeds 1): fall back to reporting it *)
        atoms
      else Ddmin.minimize ?order ~prefetch ~test atoms
    with Trace.Budget_exhausted ->
      finished := false;
      !best_high
  in
  {
    minimal = variant_of final_high;
    high_set = final_high;
    finished = !finished;
    evaluations = Trace.count trace;
  }
