(** Sharded work-stealing scheduler for whole-model joint campaigns.

    The paper's campaigns fan each search round out over 20 dedicated
    cluster nodes (Sec. IV-A); {!Pool} is the laptop analogue of one such
    node's worker set. This module simulates the next scale tier: the
    variant space of a round is block-partitioned over [shards] simulated
    node-shards, each shard owning a deque of tasks consumed by its
    [workers] slots, and a shard whose partition drains early steals from
    its neighbours in cyclic order ("lock-free-ish": deques are plain
    arrays with an atomic take cursor, so a steal is one
    [Atomic.fetch_and_add] — no locks on the task path).

    Two clocks run per batch:

    - {b real execution}: tasks run on however many domains the machine
      actually has ([min (slots t) (Pool.default_workers ())], plus the
      submitting domain), all of them taking through the same deques;
    - {b simulated schedule}: a deterministic event-driven list-scheduling
      simulation replays the batch over the full [shards × workers] slot
      grid using the caller-supplied per-task costs, yielding the
      simulated makespan and steal count. The simulation depends only on
      the partition and the costs — never on real thread interleaving —
      so the scaling curve is reproducible on any machine, including a
      single-core one.

    {!map} preserves submission order in its result list and re-raises
    the first (by submission order) exception a task threw, exactly like
    {!Pool.map}: consumers commit results sequentially, so steal order
    can never reorder the commit stream. Only driven from the domain
    that created it. *)

type t

val create : ?yield:(unit -> unit) -> shards:int -> workers:int -> unit -> t
(** [shards >= 1] simulated node-shards of [workers >= 0] evaluation
    slots each. [workers = 0] means a single sequential slot overall
    (the classic no-speculation trajectory); raises [Invalid_argument]
    on a negative argument or [shards < 1].

    [yield] is a cooperative scheduling hook fired at the start of every
    {!map} call — i.e. {e between} batches, never inside one. At that
    point every record the consumer committed is durable and no task of
    the next batch has started, so a multiplexing campaign service can
    use it to pause or interleave campaigns (the hook may raise; the
    batch is then never scheduled). It runs on the driving domain. *)

val shutdown : t -> unit
(** Terminates and joins the helper domains. Idempotent; mapping on a
    shut-down scheduler raises [Invalid_argument]. *)

val with_shards : ?yield:(unit -> unit) -> shards:int -> workers:int -> (t -> 'a) -> 'a
(** Fresh scheduler for the call's duration, shut down on exit. *)

val shards : t -> int
val workers : t -> int

val slots : t -> int
(** Simulated evaluation slots: [1] when [workers = 0], else
    [shards * workers]. Callers gate speculation on [slots t > 1]. *)

val partition : shards:int -> 'a list -> 'a list array
(** Order-preserving block partition into exactly [shards] lists (later
    ones may be empty): concatenating the result restores the input, so
    every element is assigned to exactly one shard. Raises
    [Invalid_argument] when [shards < 1]. *)

(** The steal target: an immutable task array consumed through one
    atomic cursor. [take] is total-ordered across domains, so each
    element is handed out exactly once no matter how many thieves
    race. *)
module Deque : sig
  type 'a t

  val of_list : 'a list -> 'a t
  val take : 'a t -> 'a option
  (** Next unconsumed element in submission order, or [None] when
      drained. Safe from any domain. *)

  val remaining : 'a t -> int
  (** Elements not yet taken (a racing snapshot; exact once quiescent). *)
end

(** Pure deterministic schedule simulation, exposed for property
    tests. *)
module Sim : sig
  type outcome = {
    makespan : float;  (** simulated seconds until the last slot finishes *)
    steals : int;  (** tasks executed by a slot outside their home shard *)
  }

  val schedule : shards:int -> workers:int -> queues:float array array -> outcome
  (** List-schedule the per-shard cost queues over the slot grid: the
      earliest-idle slot (ties to the lowest slot index) takes the next
      task from its home shard's queue, stealing from the next shards in
      cyclic order when home is dry. [workers = 0] collapses to one slot
      draining every queue in order ([makespan] = total cost, no
      steals). [queues] must have exactly [shards] rows. *)
end

val map : t -> cost:('b -> float) -> ('a -> 'b) -> 'a list -> 'b list
(** Evaluate one batch: block-partition the tasks over the shards, run
    them work-stealingly, then advance the simulated clock by the
    batch's simulated makespan under [cost] (per-result simulated
    seconds). Results come back in submission order; if any task raised,
    the first such exception (in submission order) is re-raised after
    the batch drains and the batch is not accounted. *)

val serial : t -> float -> unit
(** Account one non-batched (on-demand) evaluation of the given
    simulated cost: it runs alone, so the clock advances by the full
    cost. *)

type stats = {
  rounds : int;  (** batches scheduled *)
  batched : int;  (** tasks that went through the sharded deques *)
  stolen : int;  (** batched tasks a non-home slot executed (simulated) *)
  serial_tasks : int;  (** on-demand evaluations accounted by {!serial} *)
  sim_seconds : float;  (** simulated cluster wall clock, both kinds *)
}

val stats : t -> stats
