(** Evaluation trace: memoization plus the exploration log.

    The search algorithms call {!evaluate}; identical assignments (same
    signature) are served from cache without recording a new variant, so
    the trace's record list is exactly the set of {e distinct} variants
    dynamically evaluated — the "Total" column of Table II.

    All operations are thread-safe (one lock around the cache and the
    record list). Cache hits never burn budget — in particular a cached
    assignment is still served after {!Budget_exhausted} has been raised
    — and [f] runs outside the lock, so concurrent evaluations proceed in
    parallel (the first commit for a signature wins; later ones are
    discarded).

    {b Durability hooks.} An optional [sink] passed to {!create} fires
    once per committed record, under the trace lock, in commit-index
    order — the campaign journal's write-ahead append point; worker count
    never changes the sequence the sink observes. {!preload} seeds the
    cache and record list from a replayed journal so a resumed campaign
    re-evaluates nothing it already measured, and {!stats} exposes the
    counters that prove it (a journaled prefix contributes hits, never
    misses).

    {b Cross-campaign sharing.} An optional [shared_lookup] is consulted
    on every own-cache miss, before [f] runs: a hit commits as a normal
    record (cache, record list, budget, sink — everything a fresh
    evaluation would touch) but is counted under [shared] instead of
    [misses], and fires [on_shared] under the lock just before the sink
    so the journaling layer can annotate the record's provenance
    atomically with its append. The service's fleet-wide evaluation memo
    plugs in here; a solo campaign passes neither hook and behaves
    exactly as before. *)

type t

type stats = {
  hits : int;  (** {!evaluate} calls served from the memo cache *)
  misses : int;  (** fresh evaluations committed as records *)
  shared : int;
      (** records committed from [shared_lookup] answers — journaled and
          budgeted like misses, but no live evaluation ran *)
  live : int;  (** distinct signatures currently cached *)
  appends : int;  (** sink invocations (journaled appends); 0 without a sink *)
}

val create :
  ?max_variants:int ->
  ?shared_lookup:(Transform.Assignment.t -> Variant.measurement option) ->
  ?on_shared:(Variant.record -> unit) ->
  ?sink:(Variant.record -> unit) ->
  unit -> t
(** [sink] is called synchronously under the trace lock as each record
    commits (after the cache and record list are updated). An exception
    raised by the sink propagates out of {!evaluate} with the commit
    already in place — the simulated job-preemption path.

    [shared_lookup] runs {e outside} the trace lock (it may take its own)
    and must be a pure function of the assignment for the campaign's
    configuration — its answer is committed verbatim as this campaign's
    measurement. [on_shared] fires only for shared commits, under the
    lock, immediately before the sink. *)

exception Budget_exhausted
(** Raised by {!evaluate} when [max_variants] distinct evaluations have
    been spent (the searches catch it and report an unfinished search, as
    with MOM6's 12-hour cut-off). Records preloaded from a journal count
    toward the budget exactly as they did in the original run. *)

val evaluate :
  t -> f:(Transform.Assignment.t -> Variant.measurement) -> Transform.Assignment.t ->
  Variant.measurement

val find_cached : t -> Transform.Assignment.t -> Variant.measurement option
(** Peek at the cache without evaluating, recording, or touching the
    budget or the hit/miss counters — used to skip already-known variants
    when building a speculative batch. *)

val preload : t -> Variant.record list -> unit
(** Seed the trace with already-measured records (journal replay), in
    order: each distinct signature is cached, appended to the record list
    with the next commit index, and counted against the budget. The sink
    is {e not} fired — preloaded records are already journaled — and the
    hit/miss counters are untouched. Duplicate signatures are ignored. *)

val records : t -> Variant.record list
(** In evaluation order. *)

val count : t -> int
val stats : t -> stats
val clear : t -> unit
(** Also resets the {!stats} counters. *)
