(** Evaluation trace: memoization plus the exploration log.

    The search algorithms call {!evaluate}; identical assignments (same
    signature) are served from cache without recording a new variant, so
    the trace's record list is exactly the set of {e distinct} variants
    dynamically evaluated — the "Total" column of Table II.

    All operations are thread-safe (one lock around the cache and the
    record list). Cache hits never burn budget — in particular a cached
    assignment is still served after {!Budget_exhausted} has been raised
    — and [f] runs outside the lock, so concurrent evaluations proceed in
    parallel (the first commit for a signature wins; later ones are
    discarded). *)

type t

val create : ?max_variants:int -> unit -> t

exception Budget_exhausted
(** Raised by {!evaluate} when [max_variants] distinct evaluations have
    been spent (the searches catch it and report an unfinished search, as
    with MOM6's 12-hour cut-off). *)

val evaluate :
  t -> f:(Transform.Assignment.t -> Variant.measurement) -> Transform.Assignment.t ->
  Variant.measurement

val find_cached : t -> Transform.Assignment.t -> Variant.measurement option
(** Peek at the cache without evaluating, recording, or touching the
    budget — used to skip already-known variants when building a
    speculative batch. *)

val records : t -> Variant.record list
(** In evaluation order. *)

val count : t -> int
val clear : t -> unit
