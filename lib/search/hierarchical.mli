(** Community-structure precision search.

    The paper points at clustering as the way to scale FPPT: HiFPTuner
    "exploits community structure" of variables [6], Yao & Xue cluster
    search atoms manually [32], and Sec. V recommends using the
    interprocedural FP flow graph to group variables that must move
    together. This search implements that idea on top of ddmin:

    {ol
    {- {b group phase}: atoms are partitioned into caller-provided groups
       (typically connected components of the flow graph — variables
       linked by parameter passing, which a mixed assignment would split
       with costly wrappers). Each group is lowered or kept atomically
       and ddmin finds a 1-minimal set of {e groups} that must stay at
       64 bits.}
    {- {b refinement phase}: the surviving groups' atoms are refined
       individually with a second ddmin, everything else staying
       lowered.}}

    Compared to flat delta debugging over [n] atoms, the group phase
    explores [g ≪ n] units, and grouped atoms never straddle a precision
    boundary mid-search — exactly the wrapper-overhead pathology the flow
    graph predicts. The result is 1-minimal at atom granularity within
    the reachable set (lowering any single remaining 64-bit atom violates
    the criteria). *)

val search :
  ?pool:Pool.t ->
  ?shard:Shard.t ->
  ?cost:(Variant.measurement -> float) ->
  ?affinity:(Transform.Assignment.t -> string) ->
  ?ranker:Delta_debug.ranker ->
  atoms:Transform.Assignment.atom list ->
  groups:Transform.Assignment.atom list list ->
  trace:Trace.t ->
  evaluate:(Transform.Assignment.t -> Variant.measurement) ->
  Delta_debug.config ->
  Delta_debug.result
(** [groups] must partition [atoms] (checked; raises [Invalid_argument]
    otherwise). Budget exhaustion returns the best accepted variant seen,
    with [finished = false], as in {!Delta_debug.search}. [pool] (or a
    {!Shard} scheduler via [shard]/[cost]) enables speculative batch
    evaluation in both phases with a bit-identical trajectory, as in
    {!Delta_debug.search}. [ranker] demotes predicted-fail candidates in
    both the group-phase and the refinement-phase rounds, accruing one
    evidence stream across the two phases, as in
    {!Delta_debug.search}. *)
