(** Speculative batch evaluation for the batched searches.

    Bridges {!Ddmin.minimize}'s [prefetch] hook and {!Pool} or {!Shard}:
    candidates announced by a round are evaluated in parallel into a
    side table (raw evaluations — no trace records, no budget); the
    search then consumes them sequentially through {!evaluate}, which
    commits through the {!Trace} using the speculative result when one
    exists. Records, budget accounting and the search trajectory are
    therefore identical to a sequential run. With no pool and no shard
    scheduler, both operations degrade to the plain sequential path.
    Must be driven from a single domain. *)

type t

val create :
  ?pool:Pool.t ->
  ?shard:Shard.t ->
  ?cost:(Variant.measurement -> float) ->
  ?affinity:(Transform.Assignment.t -> string) ->
  trace:Trace.t ->
  evaluate:(Transform.Assignment.t -> Variant.measurement) ->
  unit ->
  t
(** [affinity] labels assignments that evaluate to the same underlying
    outcome (e.g. {!Core}'s batch-reuse signature); [prefetch] schedules
    same-label candidates back to back on one worker so the later ones
    hit the evaluator's reuse table instead of racing to recompute it.
    Purely a scheduling hint: results and records are unchanged.

    [shard] replaces [pool] as the execution engine (it wins when both
    are given): each affinity group becomes one work-stealing shard task
    and the scheduler's simulated cluster clock advances per batch, with
    [cost] (simulated seconds per measurement, default 0) pricing the
    tasks. A scheduler with a single simulated slot
    ([Shard.slots = 1]) disables speculation — the classic sequential
    trajectory — while still accounting every fresh evaluation
    serially. *)

val prefetch : t -> Transform.Assignment.t list -> unit
(** Evaluate the not-yet-known assignments of a batch on the pool or
    shard scheduler (deduplicated against the trace cache, earlier
    speculation, and within the batch), grouped by [affinity] when
    given. No-op without an engine. *)

val evaluate : t -> Transform.Assignment.t -> Variant.measurement
(** [Trace.evaluate] that serves speculative results before falling back
    to a direct evaluation. *)
