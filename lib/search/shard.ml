(* Sharded work-stealing batch scheduler. See shard.mli for the model.

   Real execution and the simulated schedule are deliberately decoupled:
   tasks run on whatever domains the machine offers (all taking through
   the same atomic deques, so the batch drains as fast as the hardware
   allows), while the cluster clock comes from a pure list-scheduling
   simulation over the caller-supplied costs. Results are collected in
   submission order, so the commit stream the consumer produces is
   independent of both schedules. *)

module Deque = struct
  type 'a t = {
    items : 'a array;
    next : int Atomic.t;
  }

  let of_list xs = { items = Array.of_list xs; next = Atomic.make 0 }

  let take t =
    let i = Atomic.fetch_and_add t.next 1 in
    if i < Array.length t.items then Some t.items.(i) else None

  let remaining t = max 0 (Array.length t.items - Atomic.get t.next)
end

let partition ~shards xs =
  if shards < 1 then invalid_arg "Shard.partition: shards < 1";
  let n = List.length xs in
  let base = n / shards and extra = n mod shards in
  let out = Array.make shards [] in
  let rec take acc k rest =
    if k = 0 then (List.rev acc, rest)
    else match rest with x :: tl -> take (x :: acc) (k - 1) tl | [] -> assert false
  in
  let rest = ref xs in
  for s = 0 to shards - 1 do
    let want = base + if s < extra then 1 else 0 in
    let part, tl = take [] want !rest in
    out.(s) <- part;
    rest := tl
  done;
  assert (!rest = []);
  out

module Sim = struct
  type outcome = {
    makespan : float;
    steals : int;
  }

  (* Deterministic list scheduling: the earliest-idle slot (ties broken
     toward the lowest slot index) takes the next task from its home
     shard, stealing cyclically when home is dry. Input order within a
     queue is preserved, so the simulation is a pure function of
     (partition, costs). *)
  let schedule ~shards ~workers ~queues =
    if Array.length queues <> shards then
      invalid_arg "Shard.Sim.schedule: queues must have one row per shard";
    let slots = if workers <= 0 then 1 else shards * workers in
    let next = Array.map (fun _ -> ref 0) queues in
    let times = Array.make slots 0.0 in
    let steals = ref 0 in
    let total = Array.fold_left (fun acc q -> acc + Array.length q) 0 queues in
    for _ = 1 to total do
      let slot = ref 0 in
      for i = 1 to slots - 1 do
        if times.(i) < times.(!slot) then slot := i
      done;
      let home = if workers <= 0 then 0 else !slot / workers in
      let rec pick k =
        if k = shards then None
        else begin
          let q = (home + k) mod shards in
          if !(next.(q)) < Array.length queues.(q) then Some (q, k) else pick (k + 1)
        end
      in
      match pick 0 with
      | None ->
        (* [total] bounds the loop by the number of tasks, so a queue
           with work always exists here *)
        assert false
      | Some (q, k) ->
        times.(!slot) <- times.(!slot) +. queues.(q).(!(next.(q)));
        incr next.(q);
        if k > 0 && workers > 0 then incr steals
    done;
    { makespan = Array.fold_left Float.max 0.0 times; steals = !steals }
end

type stats = {
  rounds : int;
  batched : int;
  stolen : int;
  serial_tasks : int;
  sim_seconds : float;
}

type t = {
  n_shards : int;
  n_workers : int;
  yield : (unit -> unit) option;  (* cooperative hook between batches *)
  lock : Mutex.t;
  work : Condition.t;  (* a batch was posted, or shutdown *)
  done_ : Condition.t;  (* the posted batch fully drained *)
  mutable batch : (unit -> unit) Deque.t array option;
  mutable left : int;  (* tasks of the current batch not yet finished *)
  mutable gen : int;  (* batch generation; bumps wake the runners *)
  mutable stop : bool;
  mutable domains : unit Domain.t array;
  (* driver-only statistics *)
  mutable s_rounds : int;
  mutable s_batched : int;
  mutable s_stolen : int;
  mutable s_serial : int;
  mutable s_clock : float;
}

let shards t = t.n_shards
let workers t = t.n_workers
let slots t = if t.n_workers = 0 then 1 else t.n_shards * t.n_workers

(* Take the next task for a runner homed on [home]: own shard first,
   then the neighbours in cyclic order. *)
let take_any queues ~home ~shards =
  let rec go k =
    if k = shards then None
    else
      match Deque.take queues.((home + k) mod shards) with
      | Some _ as task -> task
      | None -> go (k + 1)
  in
  go 0

let run_tasks t ~home queues =
  let executed = ref 0 in
  let rec go () =
    match take_any queues ~home ~shards:t.n_shards with
    | Some task ->
      task ();
      incr executed;
      go ()
    | None -> ()
  in
  go ();
  Mutex.lock t.lock;
  t.left <- t.left - !executed;
  if t.left = 0 then Condition.broadcast t.done_;
  Mutex.unlock t.lock

let rec runner_loop t ~home seen =
  Mutex.lock t.lock;
  while (not t.stop) && t.gen = seen do
    Condition.wait t.work t.lock
  done;
  if t.stop then Mutex.unlock t.lock
  else begin
    let g = t.gen in
    let b = t.batch in
    Mutex.unlock t.lock;
    (match b with Some queues -> run_tasks t ~home queues | None -> ());
    runner_loop t ~home g
  end

let create ?yield ~shards:n_shards ~workers:n_workers () =
  if n_shards < 1 then invalid_arg "Shard.create: shards < 1";
  if n_workers < 0 then invalid_arg "Shard.create: workers < 0";
  let t =
    {
      n_shards;
      n_workers;
      yield;
      lock = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      batch = None;
      left = 0;
      gen = 0;
      stop = false;
      domains = [||];
      s_rounds = 0;
      s_batched = 0;
      s_stolen = 0;
      s_serial = 0;
      s_clock = 0.0;
    }
  in
  (* Helper domains are capped by the machine: simulated slots beyond
     the spare cores change only the simulated schedule, not real
     execution. The submitting domain always participates, so zero
     helpers (a single-core host) still drains every batch. *)
  let helpers = if slots t <= 1 then 0 else min (slots t) (Pool.default_workers ()) in
  t.domains <-
    Array.init helpers (fun d ->
        Domain.spawn (fun () -> runner_loop t ~home:(d mod n_shards) 0));
  t

let shutdown t =
  Mutex.lock t.lock;
  let first = not t.stop in
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  if first then Array.iter Domain.join t.domains

let with_shards ?yield ~shards ~workers f =
  let t = create ?yield ~shards ~workers () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t ~cost f xs =
  if t.stop then invalid_arg "Shard.map: scheduler is shut down";
  (* a batch boundary is the scheduler's cooperative yield point: every
     previously committed record is durable here, and nothing of the next
     batch has started, so a multiplexing service can pause or interleave
     campaigns without ever touching what gets recorded *)
  Option.iter (fun y -> y ()) t.yield;
  match xs with
  | [] -> []
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let res_lock = Mutex.create () in
    let results = Array.make n None in
    let idx_parts = partition ~shards:t.n_shards (List.init n Fun.id) in
    let thunk i () =
      let r = match f arr.(i) with v -> Ok v | exception e -> Error e in
      Mutex.lock res_lock;
      results.(i) <- Some r;
      Mutex.unlock res_lock
    in
    let queues = Array.map (fun is -> Deque.of_list (List.map thunk is)) idx_parts in
    if Array.length t.domains = 0 then begin
      (* no helpers: the driver is the single real runner *)
      t.left <- n;
      run_tasks t ~home:0 queues
    end
    else begin
      Mutex.lock t.lock;
      t.batch <- Some queues;
      t.left <- n;
      t.gen <- t.gen + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.lock;
      run_tasks t ~home:0 queues;
      Mutex.lock t.lock;
      while t.left > 0 do
        Condition.wait t.done_ t.lock
      done;
      t.batch <- None;
      Mutex.unlock t.lock
    end;
    Mutex.lock res_lock;
    let collected =
      Array.map
        (function
          | Some r -> r
          | None -> assert false (* [left] reached 0: every task ran *))
        results
    in
    Mutex.unlock res_lock;
    (* first exception in submission order wins, as in Pool.map; a
       failed batch is not accounted on the simulated clock *)
    Array.iter (function Error e -> raise e | Ok _ -> ()) collected;
    let ok = Array.map (function Ok v -> v | Error _ -> assert false) collected in
    let cost_queues =
      Array.map (fun is -> Array.of_list (List.map (fun i -> cost ok.(i)) is)) idx_parts
    in
    let out = Sim.schedule ~shards:t.n_shards ~workers:t.n_workers ~queues:cost_queues in
    t.s_rounds <- t.s_rounds + 1;
    t.s_batched <- t.s_batched + n;
    t.s_stolen <- t.s_stolen + out.Sim.steals;
    t.s_clock <- t.s_clock +. out.Sim.makespan;
    Array.to_list ok

let serial t c =
  t.s_serial <- t.s_serial + 1;
  t.s_clock <- t.s_clock +. c

let stats t =
  {
    rounds = t.s_rounds;
    batched = t.s_batched;
    stolen = t.s_stolen;
    serial_tasks = t.s_serial;
    sim_seconds = t.s_clock;
  }
