let search ?pool ?shard ?cost ?affinity ?ranker ~atoms ~groups ~trace ~evaluate
    (cfg : Delta_debug.config) : Delta_debug.result =
  let module A = Transform.Assignment in
  (* groups must partition the atom list *)
  let grouped = List.concat groups in
  if
    List.length grouped <> List.length atoms
    || not (List.for_all (fun a -> List.memq a grouped) atoms)
  then invalid_arg "Hierarchical.search: groups must partition the atoms";
  let diff big small = List.filter (fun a -> not (List.memq a small)) big in
  let variant_of high = A.of_lowered atoms ~lowered:(diff atoms high) in
  let order = Delta_debug.candidate_order ~variant_of ranker in
  let spec = Speculate.create ?pool ?shard ?cost ?affinity ~trace ~evaluate () in
  let best_high = ref atoms in
  let test high =
    let asg = variant_of high in
    let m = Speculate.evaluate spec asg in
    Option.iter (fun (rk : Delta_debug.ranker) -> rk.Delta_debug.note asg m) ranker;
    let ok = Delta_debug.accepted cfg m in
    if ok && List.length high < List.length !best_high then best_high := high;
    ok
  in
  let prefetch highs = Speculate.prefetch spec (List.map variant_of highs) in
  let finished = ref true in
  let final_high =
    try
      if not (test atoms) then atoms
      else begin
        (* phase 1: 1-minimal set of GROUPS kept at 64 bits; the ranker
           sees the same per-assignment evidence stream in both phases *)
        let high_groups =
          Ddmin.minimize
            ?order:
              (Delta_debug.candidate_order
                 ~variant_of:(fun gs -> variant_of (List.concat gs))
                 ranker)
            ~prefetch:(fun gss -> prefetch (List.map List.concat gss))
            ~test:(fun gs -> test (List.concat gs))
            groups
        in
        (* phase 2: refine the surviving groups atom by atom *)
        Ddmin.minimize ?order ~prefetch ~test (List.concat high_groups)
      end
    with Trace.Budget_exhausted ->
      finished := false;
      !best_high
  in
  {
    Delta_debug.minimal = variant_of final_high;
    high_set = final_high;
    finished = !finished;
    evaluations = Trace.count trace;
  }
