let search ?pool ?shard ?cost ?affinity ~atoms ~groups ~trace ~evaluate (cfg : Delta_debug.config) : Delta_debug.result =
  let module A = Transform.Assignment in
  (* groups must partition the atom list *)
  let grouped = List.concat groups in
  if
    List.length grouped <> List.length atoms
    || not (List.for_all (fun a -> List.memq a grouped) atoms)
  then invalid_arg "Hierarchical.search: groups must partition the atoms";
  let diff big small = List.filter (fun a -> not (List.memq a small)) big in
  let variant_of high = A.of_lowered atoms ~lowered:(diff atoms high) in
  let spec = Speculate.create ?pool ?shard ?cost ?affinity ~trace ~evaluate () in
  let best_high = ref atoms in
  let test high =
    let m = Speculate.evaluate spec (variant_of high) in
    let ok = Delta_debug.accepted cfg m in
    if ok && List.length high < List.length !best_high then best_high := high;
    ok
  in
  let prefetch highs = Speculate.prefetch spec (List.map variant_of highs) in
  let finished = ref true in
  let final_high =
    try
      if not (test atoms) then atoms
      else begin
        (* phase 1: 1-minimal set of GROUPS kept at 64 bits *)
        let high_groups =
          Ddmin.minimize
            ~prefetch:(fun gss -> prefetch (List.map List.concat gss))
            ~test:(fun gs -> test (List.concat gs))
            groups
        in
        (* phase 2: refine the surviving groups atom by atom *)
        Ddmin.minimize ~prefetch ~test (List.concat high_groups)
      end
    with Trace.Budget_exhausted ->
      finished := false;
      !best_high
  in
  {
    Delta_debug.minimal = variant_of final_high;
    high_set = final_high;
    finished = !finished;
    evaluations = Trace.count trace;
  }
