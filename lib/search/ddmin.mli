(** Generic ddmin (Zeller & Hildebrandt [33]).

    [minimize ~test xs] returns a 1-minimal subset [m] of [xs] with
    [test m = true]: removing any single element of [m] makes [test]
    fail. Requires [test xs = true]; [test []] is tried first (the empty
    set is trivially 1-minimal when it passes).

    The classic algorithm: partition the current set into [n] chunks, try
    each chunk and each complement, recurse on success with adjusted
    granularity, double [n] when stuck, and stop at singleton granularity.
    Average O(k log k) tests, worst case O(k²).

    Exceptions raised by [test] (e.g. {!Trace.Budget_exhausted})
    propagate to the caller.

    [prefetch] (default: no-op) receives each round's candidate subsets —
    chunks first, then the eligible complements — in exactly the order
    [test] will try them, before the first [test] call of the round. A
    parallel caller evaluates them speculatively ({!Pool.map}) and serves
    the subsequent [test] calls from those results; because consumption
    stays sequential, the search trajectory is bit-identical to a run
    without [prefetch] — only wall clock changes. *)

val minimize :
  ?prefetch:('a list list -> unit) -> test:('a list -> bool) -> 'a list -> 'a list

val partition : int -> 'a list -> 'a list list
(** [partition n xs] splits [xs] into at most [n] non-empty chunks of
    near-equal size, preserving order. Exposed for tests. *)
