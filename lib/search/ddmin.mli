(** Generic ddmin (Zeller & Hildebrandt [33]).

    [minimize ~test xs] returns a 1-minimal subset [m] of [xs] with
    [test m = true]: removing any single element of [m] makes [test]
    fail. Requires [test xs = true]; [test []] is tried first (the empty
    set is trivially 1-minimal when it passes).

    The classic algorithm: partition the current set into [n] chunks, try
    each chunk and each complement, recurse on success with adjusted
    granularity, double [n] when stuck, and stop at singleton granularity.
    Average O(k log k) tests, worst case O(k²).

    Exceptions raised by [test] (e.g. {!Trace.Budget_exhausted})
    propagate to the caller. *)

(** One round candidate. A passing [Chunk] restarts at granularity 2; a
    passing [Complement] recurses at [max (n-1) 2], as in the classic
    algorithm. *)
type 'a candidate = Chunk of 'a list | Complement of 'a list

val subset : 'a candidate -> 'a list
(** The underlying element subset of a candidate. *)

val minimize :
  ?order:('a candidate list -> 'a candidate list) ->
  ?prefetch:('a list list -> unit) ->
  test:('a list -> bool) ->
  'a list ->
  'a list
(** [prefetch] (default: no-op) receives each round's candidate subsets —
    in exactly the order [test] will try them, after [order] — before the
    first [test] call of the round. A parallel caller evaluates them
    speculatively ({!Pool.map}) and serves the subsequent [test] calls
    from those results; because consumption stays sequential, the search
    trajectory is bit-identical to a run without [prefetch] — only wall
    clock changes.

    [order] (default: identity) reorders each round's merged candidate
    list (all chunks followed by all eligible complements) — the
    predictive-rank hook: a caller moves candidates it predicts will fail
    behind the rest, so [find_opt] reaches a passer with fewer
    evaluations. The default order replays the classic
    chunks-then-complements sequence exactly. Unlike [prefetch], [order]
    DOES change the search trajectory; determinism across schedulers is
    preserved as long as [order] is a pure function of the candidate sets
    and of evidence accumulated in committed-record order. *)

val partition : int -> 'a list -> 'a list list
(** [partition n xs] splits [xs] into at most [n] non-empty chunks of
    near-equal size, preserving order. Exposed for tests. *)
