type status = Pass | Fail | Timeout | Error

let status_to_string = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Timeout -> "timeout"
  | Error -> "error"

let status_of_string = function
  | "pass" -> Some Pass
  | "fail" -> Some Fail
  | "timeout" -> Some Timeout
  | "error" -> Some Error
  | _ -> None

let pp_status ppf s = Format.pp_print_string ppf (status_to_string s)

type measurement = {
  status : status;
  speedup : float;
  rel_error : float;
  hotspot_time : float;
  model_time : float;
  proc_stats : (string * float * int) list;
  casting_share : float;
  detail : string;
}

type record = {
  index : int;
  asg : Transform.Assignment.t;
  meas : measurement;
}

let fraction_lowered r = Transform.Assignment.fraction_lowered r.asg

type summary = {
  total : int;
  pass_pct : float;
  fail_pct : float;
  timeout_pct : float;
  error_pct : float;
  best_speedup : float;
}

let summarize records =
  (* one pass: status counts and the best passing speedup together *)
  let total, np, nf, nt, ne, best_speedup =
    List.fold_left
      (fun (n, np, nf, nt, ne, best) r ->
        match r.meas.status with
        | Pass -> (n + 1, np + 1, nf, nt, ne, Float.max best r.meas.speedup)
        | Fail -> (n + 1, np, nf + 1, nt, ne, best)
        | Timeout -> (n + 1, np, nf, nt + 1, ne, best)
        | Error -> (n + 1, np, nf, nt, ne + 1, best))
      (0, 0, 0, 0, 0, 0.0) records
  in
  let pct n = if total = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int total in
  {
    total;
    pass_pct = pct np;
    fail_pct = pct nf;
    timeout_pct = pct nt;
    error_pct = pct ne;
    best_speedup;
  }

let frontier records =
  (* sort-then-sweep in O(n log n): after a stable sort by error, a
     record is Pareto-optimal iff it holds the top speedup of its error
     class and strictly beats the running best over all smaller errors.
     Exact (speedup, error) duplicates are incomparable, so a class's
     maximum survives with multiplicity. *)
  let passing = List.filter (fun r -> r.meas.status = Pass) records in
  let sorted =
    List.stable_sort (fun a b -> compare a.meas.rel_error b.meas.rel_error) passing
  in
  let rec sweep best_below acc = function
    | [] -> List.rev acc
    | r :: _ as rest ->
      let err = r.meas.rel_error in
      let rec split g = function
        | r' :: tl when r'.meas.rel_error = err -> split (r' :: g) tl
        | tl -> (List.rev g, tl)
      in
      let group, rest' = split [] rest in
      let gmax =
        List.fold_left (fun m r' -> Float.max m r'.meas.speedup) neg_infinity group
      in
      let acc =
        if gmax > best_below then
          List.fold_left
            (fun acc r' -> if r'.meas.speedup = gmax then r' :: acc else acc)
            acc group
        else acc
      in
      sweep (Float.max best_below gmax) acc rest'
  in
  sweep neg_infinity [] sorted

let best records =
  List.fold_left
    (fun acc r ->
      if r.meas.status <> Pass then acc
      else
        match acc with
        | Some b when b.meas.speedup >= r.meas.speedup -> acc
        | Some _ | None -> Some r)
    None records
