type params = {
  loop_weight : float;
  element_weight : float;
  scalar_cast_cost : float;
  unknown_elements : int;
}

let default_params =
  { loop_weight = 100.0; element_weight = 1.0; scalar_cast_cost = 1.0; unknown_elements = 1000 }

type verdict = {
  penalty : float;
  vector_loops : int;
  mismatched_edges : int;
}

let evaluate ?(params = default_params) ?(conv_ratio_threshold = 0.34) st =
  let graph = Flowgraph.build st in
  let bad = Flowgraph.violations graph in
  let penalty =
    List.fold_left
      (fun acc (e : Flowgraph.edge) ->
        let calls = params.loop_weight ** float_of_int e.Flowgraph.e_loop_depth in
        let size =
          match e.Flowgraph.e_dummy.Flowgraph.n_elements with
          | Some n when e.Flowgraph.e_dummy.Flowgraph.n_is_array -> float_of_int n
          | None when e.Flowgraph.e_dummy.Flowgraph.n_is_array ->
            float_of_int params.unknown_elements
          | Some _ | None -> 0.0
        in
        acc +. (calls *. (params.scalar_cast_cost +. (params.element_weight *. size))))
      0.0 bad
  in
  let reports = Vectorize.analyze st in
  let vector_loops =
    List.length
      (List.filter
         (fun (r : Vectorize.report) ->
           Vectorize.vectorizable r
           &&
           let ratio =
             if r.Vectorize.fp_ops = 0 then 0.0
             else float_of_int r.Vectorize.conv_sites /. float_of_int r.Vectorize.fp_ops
           in
           ratio <= conv_ratio_threshold)
         reports)
  in
  { penalty; vector_loops; mismatched_edges = List.length bad }

let predicts_worse ~baseline ~candidate ~penalty_budget =
  candidate.vector_loops < baseline.vector_loops || candidate.penalty > penalty_budget

(* ------------------------------------------------------------------ *)
(* Static trip counts: constant folding over loop bounds, so the
   sensitivity pass can weight loop-carried accumulation by the real
   iteration count instead of the loop_weight^depth proxy whenever the
   bounds are compile-time constants (the common case in the model
   proxies, where extents come from named integer parameters).          *)

let rec const_int ?(env = fun _ -> None) (e : Fortran.Ast.expr) =
  match e with
  | Fortran.Ast.Int_lit n -> Some n
  | Fortran.Ast.Var v -> env v
  | Fortran.Ast.Unop (Fortran.Ast.Neg, e) -> Option.map (fun n -> -n) (const_int ~env e)
  | Fortran.Ast.Binop (op, a, b) -> (
    match (const_int ~env a, const_int ~env b) with
    | Some x, Some y -> (
      match op with
      | Fortran.Ast.Add -> Some (x + y)
      | Fortran.Ast.Sub -> Some (x - y)
      | Fortran.Ast.Mul -> Some (x * y)
      | Fortran.Ast.Div -> if y = 0 then None else Some (x / y)
      | Fortran.Ast.Pow ->
        (* mirror the interpreter: negative integer exponents trap, and
           anything large enough to overflow 63 bits is not worth folding *)
        if y < 0 || y > 62 then None
        else begin
          let r = ref 1 in
          for _ = 1 to y do
            r := !r * x
          done;
          Some !r
        end
      | _ -> None)
    | _ -> None)
  | _ -> None

let trip_count ?env (s : Fortran.Ast.stmt_node) =
  match s with
  | Fortran.Ast.Do { from_; to_; step; _ } -> (
    let step_v =
      match step with None -> Some 1 | Some e -> const_int ?env e
    in
    match (const_int ?env from_, const_int ?env to_, step_v) with
    | Some lo, Some hi, Some st when st <> 0 ->
      (* Fortran semantics: max(0, (hi - lo + st) / st) with flooring —
         spelled out sign-by-sign because OCaml division truncates
         toward zero and a naive (hi-lo)/st+1 over-counts empty loops *)
      let n =
        if st > 0 then if hi < lo then 0 else ((hi - lo) / st) + 1
        else if hi > lo then 0
        else ((lo - hi) / -st) + 1
      in
      Some n
    | _ -> None)
  | _ -> None
