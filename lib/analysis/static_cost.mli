(** Static evaluation of mixed-precision variants — the paper's Sec. IV-B
    and Sec. V recommendations, implemented.

    The paper proposes three static strategies to avoid paying for dynamic
    evaluation of predictably-bad variants:

    {ol
    {- (MPAS-A analysis) "a cost model which assigns a penalty for
       mixed-precision interprocedural data flow as a function of the
       number of calls";}
    {- (MOM6 analysis) the same penalty additionally scaled by "the number
       of array elements";}
    {- (Sec. V) "filter out variants that have less vectorization than the
       baseline prior to execution by inspecting compiler vectorization
       reports".}}

    Call volume is not known statically; the standard proxy used here
    weights each call site by [loop_weight ^ loop_depth]. The penalty of a
    program is the weighted sum over the mismatching edges of its
    {!Flowgraph}. The ablation benchmark measures how much search time
    these filters save and what they cost in missed variants. *)

type params = {
  loop_weight : float;  (** assumed iterations per loop nesting level (default 100) *)
  element_weight : float;  (** per-element cost of an array boundary cast (default 1) *)
  scalar_cast_cost : float;  (** cost of one scalar boundary cast (default 1) *)
  unknown_elements : int;  (** assumed elements for arrays of unknown static size *)
}

val default_params : params

type verdict = {
  penalty : float;  (** casting-overhead penalty of the variant *)
  vector_loops : int;  (** loops predicted to vectorize *)
  mismatched_edges : int;
}

val evaluate : ?params:params -> ?conv_ratio_threshold:float -> Fortran.Symtab.t -> verdict
(** Score a (transformed but not yet wrapped) program. Mismatching
    flow-graph edges are priced by call volume × element count; vector
    loops are counted under the same conversion-ratio rule the cost model
    uses. *)

val predicts_worse :
  baseline:verdict -> candidate:verdict -> penalty_budget:float -> bool
(** The static filter: [true] when the candidate should be skipped without
    dynamic evaluation — it vectorizes fewer loops than the baseline, or
    its casting penalty exceeds [penalty_budget]. *)

val const_int : ?env:(string -> int option) -> Fortran.Ast.expr -> int option
(** Fold an integer expression to a compile-time constant. [env] resolves
    named integer parameters (default: nothing resolves). Division by zero,
    negative exponents, and any non-integer construct yield [None]. *)

val trip_count : ?env:(string -> int option) -> Fortran.Ast.stmt_node -> int option
(** Static iteration count of a counted [do] loop with the Fortran
    semantics [max 0 ((to - from + step) / step)]: zero-trip loops fold to
    [Some 0], negative strides count downward, and a non-constant bound, a
    constant zero step (a runtime trap), or any non-[Do] statement
    (including [do while]) is [None]. *)
