(** Tuning-campaign configuration.

    Collects the choices Fig. 1 asks the user for, beyond what the model
    registry already fixes (workload, correctness metric, threshold). *)

type mode =
  | Hotspot_guided
      (** the searches of Sec. IV-B: Eq.-1 speedup over the hotspot's CPU
          time (exclusive time of the targeted procedures) *)
  | Whole_model_guided
      (** the Sec. IV-C search: speedup over the whole model's time *)

type predict =
  | Predict_off  (** the unpredicted search (pre-PR-9 behaviour) *)
  | Predict_rank
      (** reorder ddmin partitions/complements by the static score so
          promising variants are tried first; the minimal set is
          bit-identical to [Predict_off], only the exploration order (and
          hence evaluations-to-minimal) changes *)
  | Predict_prune
      (** [Predict_rank] plus: skip dynamic evaluation of variants whose
          finite static error bound already exceeds
          [predict_margin × threshold], journaling them as [static:] loss
          records *)

type t = {
  machine : Runtime.Machine.t;
  mode : mode;
  perf_floor : float;
      (** delta-debug acceptance floor on speedup; [0.95] tolerates Eq.-1
          noise around parity, matching "not less performant than the
          baseline" *)
  seed : int;  (** base seed for the injected run-to-run noise *)
  baseline_runs : int;  (** baseline ensemble size used to pick Eq.-1's n (10) *)
  static_filter : bool;
      (** enable the Sec.-V static pre-filter (vectorization report +
          casting-penalty cost model) before dynamic evaluation *)
  static_penalty_budget : float;  (** casting-penalty budget for the filter *)
  max_variants : int option;  (** overrides the model's default budget *)
  predict : predict;  (** sensitivity-guided search steering (off by default) *)
  predict_margin : float;
      (** soundness slack for [Predict_prune]: only variants whose static
          bound exceeds margin × threshold are skipped. The default (1e6)
          is deliberately enormous: the worst-case rounding model
          accumulates linearly where real errors random-walk, so sound
          bounds overshoot observed error by ~sqrt(ops) — measured up to
          ~1.2e5× threshold on passing funarc variants — and pruning must
          never skip a variant that would pass. Lower it explicitly to
          trade safety for pruning. *)
  proc_cache : bool;
      (** reuse lowered procedures across variants keyed by precision
          signature ({!Runtime.Lower.Cache}); on by default, off gives
          every evaluation a fresh lowering (results are identical) *)
  verify_roundtrip : bool;
      (** run every variant through both the direct-AST fast path and the
          unparse→reparse slow path and fail loudly if any outcome bit
          differs; the fast path's correctness oracle (off by default —
          it restores the old per-variant cost, and then some) *)
  compile : bool;
      (** evaluate variants through the closure-compiled backend
          ({!Runtime.Compile}) instead of the IR-walking evaluator; on by
          default, off ([--no-compile]) falls back to {!Runtime.Lower.run}
          (results are identical) *)
  batch_reuse : bool;
      (** share whole-run outcomes between variants whose effective
          precision assignment is identical on the reachable program (the
          raw outcome is a pure function of that signature); on by
          default, off recomputes every variant (results are identical) *)
}

val default : t
(** [Hotspot_guided], default machine, floor 0.95, seed 42, no static
    filter. *)

val digest : t -> string
(** Hex digest over the result-affecting fields (machine, mode, floor,
    seed, baseline runs, static filter + budget, variant budget). The
    campaign journal header stores it, and resume refuses a journal whose
    digest disagrees with the offered configuration. [proc_cache],
    [verify_roundtrip], [compile] and [batch_reuse] are excluded: they
    change how variants are evaluated, never what the results are.
    [predict]/[predict_margin] are appended only when predict is not
    [Predict_off], so pre-PR-9 journals keep their digests. *)
