type t = Metrics.Linreg.model

(* the feature extraction lives in [Sensitivity.Rank]: the search-time
   demotion engine refits the same OLS on the same features each round,
   and the two models must never drift apart *)
let feature_names = Sensitivity.Rank.feature_names
let features (p : Tuner.prepared) asg = Sensitivity.Rank.features ~st:p.Tuner.st asg

let measurable (r : Search.Variant.record) =
  r.Search.Variant.meas.Search.Variant.speedup > 0.0

let samples p records =
  let usable = List.filter measurable records in
  ( List.map (fun (r : Search.Variant.record) -> features p r.Search.Variant.asg) usable,
    List.map (fun (r : Search.Variant.record) -> r.Search.Variant.meas.Search.Variant.speedup)
      usable )

let train p records =
  let features, targets = samples p records in
  Metrics.Linreg.fit ~features ~targets

let predict m p asg = Metrics.Linreg.predict m (features p asg)

let r_squared m p records =
  let features, targets = samples p records in
  Metrics.Linreg.r_squared m ~features ~targets

(* Fusion of the static error-amplification model with the dynamic OLS
   speedup predictor: rank = predicted pass-probability (from the sound
   per-atom bounds of [Sensitivity.Score]) × predicted speedup (the OLS
   model when enough committed records exist to fit one, the static
   def-use payoff proxy otherwise).  This is the reporting/benchmark view
   of the campaign's scorer; the search itself demotes candidates with
   the [Sensitivity.Rank] evidence engine, whose inputs accrue in
   committed-record order so trajectories never depend on scheduling. *)
module Static = struct
  type nonrec t = { scorer : Sensitivity.Score.t; ols : t option }

  let speedup_model t p asg =
    match t.ols with
    | Some m -> Float.max 0.0 (predict m p asg)
    | None -> Sensitivity.Score.payoff t.scorer asg

  let score t p asg = Sensitivity.Score.pass_probability t.scorer asg *. speedup_model t p asg
  let bound t asg = Sensitivity.Score.static_bound t.scorer asg

  let create (p : Tuner.prepared) records =
    match p.Tuner.scorer with
    | None -> None
    | Some scorer ->
      let by_index =
        List.sort
          (fun (a : Search.Variant.record) (b : Search.Variant.record) ->
            compare a.Search.Variant.index b.Search.Variant.index)
          records
      in
      Some { scorer; ols = train p by_index }
end

let holdout_report p records =
  (* split on committed record order (the variant index), not arrival
     order: sharded and multi-worker runs commit the same records but may
     list them in a different order, and the ablation must not depend on
     scheduling *)
  let usable =
    List.sort
      (fun (a : Search.Variant.record) (b : Search.Variant.record) ->
        compare a.Search.Variant.index b.Search.Variant.index)
      (List.filter measurable records)
  in
  let n = List.length usable in
  let cut = n * 3 / 5 in
  let train_set = List.filteri (fun i _ -> i < cut) usable in
  let test_set = List.filteri (fun i _ -> i >= cut) usable in
  match train p train_set with
  | None -> None
  | Some m ->
    Some (r_squared m p train_set, r_squared m p test_set, List.length test_set)
