type t = {
  nodes : int;
  job_hours : float;
  per_variant_overhead_s : float;
  baseline_wall_s : float;
}

let for_model (m : Models.Registry.t) =
  match m.name with
  | "funarc" -> { nodes = 1; job_hours = 12.0; per_variant_overhead_s = 5.0; baseline_wall_s = 2.0 }
  | "mpas" -> { nodes = 20; job_hours = 12.0; per_variant_overhead_s = 600.0; baseline_wall_s = 90.0 }
  | "adcirc" ->
    { nodes = 20; job_hours = 12.0; per_variant_overhead_s = 600.0; baseline_wall_s = 200.0 }
  | "mom6" ->
    (* MOM6's larger search space keeps every node busy; heavier build *)
    { nodes = 20; job_hours = 12.0; per_variant_overhead_s = 900.0; baseline_wall_s = 60.0 }
  | _ -> { nodes = 20; job_hours = 12.0; per_variant_overhead_s = 600.0; baseline_wall_s = 60.0 }

let variant_seconds t ~baseline_cost ~variant_cost =
  let scale = if baseline_cost > 0.0 then t.baseline_wall_s /. baseline_cost else 0.0 in
  t.per_variant_overhead_s +. (variant_cost *. scale)

let campaign_hours t ~baseline_cost ~variant_costs =
  let total =
    List.fold_left
      (fun acc c -> acc +. variant_seconds t ~baseline_cost ~variant_cost:c)
      0.0 variant_costs
  in
  total /. float_of_int t.nodes /. 3600.0

let over_budget t hours = hours > t.job_hours

(* ------------------------------------------------------------------ *)

module Faults = struct
  type spec = {
    fault_seed : int;
    transient_prob : float;
    node_failure_prob : float;
    max_retries : int;
    preempt_at_hours : float option;
  }

  let none =
    {
      fault_seed = 0;
      transient_prob = 0.0;
      node_failure_prob = 0.0;
      max_retries = 2;
      preempt_at_hours = None;
    }

  type stats = {
    retried_attempts : int;
    transient_losses : int;
    node_losses : int;
    node_failures : int;
    lost_node_seconds : float;
    preemptions : int;
  }

  let zero_stats =
    {
      retried_attempts = 0;
      transient_losses = 0;
      node_losses = 0;
      node_failures = 0;
      lost_node_seconds = 0.0;
      preemptions = 0;
    }

  type state = { spec : spec; lock : Mutex.t; mutable st : stats }

  exception Preempted of { at_hours : float; boundary : float }

  let create spec = { spec; lock = Mutex.create (); st = zero_stats }
  let spec t = t.spec

  let stats t =
    Mutex.lock t.lock;
    let s = t.st in
    Mutex.unlock t.lock;
    s

  (* Deterministic coin: a pure function of (seed, fault kind, variant
     signature, attempt). Independent of evaluation order, worker count
     and process — replays of the same campaign roll the same faults. *)
  let roll spec ~kind ~signature ~attempt p =
    p > 0.0
    &&
    let h = Hashtbl.hash (spec.fault_seed, kind, signature, attempt) land 0xFFFFFF in
    float_of_int h < p *. 16777216.0

  (* Consecutive failed attempts of one fault kind, capped one past the
     retry budget ([max_retries + 1] means: every allowed attempt failed). *)
  let failed_attempts spec ~kind ~signature p =
    let rec go k =
      if k > spec.max_retries then k
      else if roll spec ~kind ~signature ~attempt:k p then go (k + 1)
      else k
    in
    go 0

  let transient_attempts spec ~signature =
    failed_attempts spec ~kind:0 ~signature spec.transient_prob

  let node_failure_attempts spec ~signature =
    failed_attempts spec ~kind:1 ~signature spec.node_failure_prob

  (* The measurement a search observes once the injected faults have had
     their say. A node that keeps dying or a transient error that survives
     the retry budget turns the variant into an [Error] record — the
     campaign accounts it gracefully instead of aborting. Pure: pool
     workers may speculate through this concurrently. *)
  let perturb spec ~signature (m : Search.Variant.measurement) =
    let lost detail =
      {
        m with
        Search.Variant.status = Search.Variant.Error;
        speedup = 0.0;
        rel_error = infinity;
        hotspot_time = 0.0;
        proc_stats = [];
        casting_share = 0.0;
        detail;
      }
    in
    let nn = node_failure_attempts spec ~signature in
    let nt = transient_attempts spec ~signature in
    if nn > spec.max_retries then
      lost (Printf.sprintf "fault: node lost after %d attempts" nn)
    else if nt > spec.max_retries then
      lost (Printf.sprintf "fault: transient error persisted after %d attempts" nt)
    else m

  (* Node-seconds burned by this variant's failed attempts — pure, so the
     resume path can re-derive the hours a journaled prefix consumed. *)
  let lost_seconds spec cluster ~baseline_cost ~signature ~model_time =
    let failed = transient_attempts spec ~signature + node_failure_attempts spec ~signature in
    if failed = 0 then 0.0
    else
      float_of_int failed
      *. variant_seconds cluster ~baseline_cost ~variant_cost:model_time

  (* Loss accounting at commit time, re-rolled deterministically from the
     signature so the books never depend on speculative evaluations: each
     failed attempt burns one variant's wall seconds on a node. Returns
     the lost seconds so the caller can charge them to the job. *)
  let note_commit t cluster ~baseline_cost ~signature ~model_time =
    let s = t.spec in
    let nt = transient_attempts s ~signature in
    let nn = node_failure_attempts s ~signature in
    let failed = nt + nn in
    if failed = 0 then 0.0
    else begin
      let per_attempt = variant_seconds cluster ~baseline_cost ~variant_cost:model_time in
      let lost_s = float_of_int failed *. per_attempt in
      (* a variant is lost at most once; when both kinds exhaust the retry
         budget the node failure wins, mirroring [perturb]'s precedence *)
      let node_lost = nn > s.max_retries in
      let transient_lost = (not node_lost) && nt > s.max_retries in
      Mutex.lock t.lock;
      t.st <-
        {
          t.st with
          retried_attempts = t.st.retried_attempts + failed;
          transient_losses = t.st.transient_losses + (if transient_lost then 1 else 0);
          node_losses = t.st.node_losses + (if node_lost then 1 else 0);
          node_failures = t.st.node_failures + nn;
          lost_node_seconds = t.st.lost_node_seconds +. lost_s;
        };
      Mutex.unlock t.lock;
      lost_s
    end

  (* The 12-hour wall: once the campaign's simulated hours cross the
     boundary the batch scheduler kills the job. Raised from the journal
     sink, after the current record is durable — exactly the crash the
     resume path is built for. *)
  let check_preempt t ~hours =
    match t.spec.preempt_at_hours with
    | Some boundary when hours >= boundary ->
      Mutex.lock t.lock;
      t.st <- { t.st with preemptions = t.st.preemptions + 1 };
      Mutex.unlock t.lock;
      raise (Preempted { at_hours = hours; boundary })
    | Some _ | None -> ()

  let active spec =
    spec.transient_prob > 0.0 || spec.node_failure_prob > 0.0 || spec.preempt_at_hours <> None
end
