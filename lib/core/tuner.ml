open Search

(* Per-campaign evaluation wall-clock accounting, shared by pool worker
   domains. *)
type eval_stats = {
  es_lock : Mutex.t;
  mutable es_count : int;
  mutable es_total : float;  (* seconds *)
  mutable es_max : float;
}

let eval_stats_create () =
  { es_lock = Mutex.create (); es_count = 0; es_total = 0.0; es_max = 0.0 }

let eval_stats_note s dt =
  Mutex.lock s.es_lock;
  s.es_count <- s.es_count + 1;
  s.es_total <- s.es_total +. dt;
  if dt > s.es_max then s.es_max <- dt;
  Mutex.unlock s.es_lock

let eval_stats_read s =
  Mutex.lock s.es_lock;
  let r = (s.es_count, s.es_total, s.es_max) in
  Mutex.unlock s.es_lock;
  r

type raw = {
  r_outcome : Runtime.Interp.outcome option;  (* None = transformation failed *)
  r_detail : string;
  r_hotspot : float;
  r_model_time : float;
  r_rel_error : float;  (* infinity unless the run finished *)
}

(* Batch-reuse table: raw outcomes shared between variants whose
   *effective* precision signature (declared kind overridden by the
   assignment) agrees on every scope that can influence the run — all
   unit scopes (global initializers execute, and are charged, before
   "<main>") plus every procedure reachable from the main program. Two
   assignments with the same key transform into programs whose reachable
   code is declaration-for-declaration identical, so the raw outcome —
   a pure function of that code under the fixed machine, budget and
   wrapper redirection — is bit-identical whoever computes it first.
   First-write-wins under the mutex, so records do not depend on the
   worker count. *)
type share = {
  sh_lock : Mutex.t;
  sh_tbl : (string, raw) Hashtbl.t;
  sh_scopes : Fortran.Symtab.scope list;
  sh_inert : (Fortran.Symtab.scope * string, unit) Hashtbl.t;
      (* variables whose kind provably cannot influence a run *)
  (* live traffic counters: atomics aggregated across worker domains
     (torn-read-free), though speculation still makes them
     schedule-dependent — the campaign's reported backend stats are
     replayed from committed records instead, see [replay_backend] *)
  sh_hits : int Atomic.t;
  sh_misses : int Atomic.t;
}

let share_create st =
  let units = List.map Fortran.Ast.unit_name (Fortran.Symtab.program st) in
  let cg = Analysis.Callgraph.build st in
  let roots = List.map fst (Analysis.Callgraph.callees cg None) in
  let scopes =
    List.map (fun u -> Fortran.Symtab.Unit_scope u) units
    @ List.map
        (fun pr -> Fortran.Symtab.Proc_scope pr)
        (List.sort_uniq compare (Analysis.Callgraph.reachable cg ~roots))
  in
  (* A variable with no defs and no uses (and, checked at key time, no
     initializer) is dropped from the key: it is never read, written,
     converted or passed, so its declared kind cannot change the outcome
     or the charged cost. Dummies and function results stay protected —
     they take part in argument binding and wrapper conversion even when
     the body never mentions them. *)
  let protected = Hashtbl.create 64 in
  List.iter
    (fun u ->
      match u with
      | Fortran.Ast.Main _ -> ()
      | Fortran.Ast.Module m ->
        List.iter
          (fun (pr : Fortran.Ast.proc) ->
            let scope = Fortran.Symtab.Proc_scope pr.Fortran.Ast.proc_name in
            List.iter
              (fun d -> Hashtbl.replace protected (scope, d) ())
              pr.Fortran.Ast.params;
            match pr.Fortran.Ast.proc_kind with
            | Fortran.Ast.Function { result } -> Hashtbl.replace protected (scope, result) ()
            | Fortran.Ast.Subroutine -> ())
          m.Fortran.Ast.mod_procs)
    (Fortran.Symtab.program st);
  let touched = Hashtbl.create 64 in
  List.iter
    (fun (s : Analysis.Defuse.summary) ->
      if s.Analysis.Defuse.defs <> [] || s.Analysis.Defuse.uses <> [] then
        Hashtbl.replace touched (s.Analysis.Defuse.scope, s.Analysis.Defuse.var) ())
    (Analysis.Defuse.analyze st);
  let inert = Hashtbl.create 64 in
  List.iter
    (fun scope ->
      List.iter
        (fun (v : Fortran.Symtab.var_info) ->
          let key = (scope, v.Fortran.Symtab.v_name) in
          match v.Fortran.Symtab.v_base with
          | Fortran.Ast.Treal _
            when (not (Hashtbl.mem touched key)) && not (Hashtbl.mem protected key) ->
            Hashtbl.replace inert key ()
          | _ -> ())
        (Fortran.Symtab.vars_of_scope st scope))
    scopes;
  {
    sh_lock = Mutex.create ();
    sh_tbl = Hashtbl.create 256;
    sh_scopes = scopes;
    sh_inert = inert;
    sh_hits = Atomic.make 0;
    sh_misses = Atomic.make 0;
  }

type prepared = {
  model : Models.Registry.t;
  config : Config.t;
  st : Fortran.Symtab.t;
  atoms : Transform.Assignment.atom list;
  baseline_cost : float;
  baseline_hotspot : float;
  baseline_metric : float list;
  baseline_timers : Runtime.Timers.entry list;
  baseline_times : float list;
  threshold : float;
  eq1_n : int;
  perf_floor : float;  (* noise-adjusted acceptance floor *)
  budget : float;
  baseline_static : Analysis.Static_cost.verdict;
  scorer : Sensitivity.Score.t option;
      (* the error-amplification scorer steering rank/prune; None when
         predict is off or the mirror analysis declined to vouch for
         itself (fell back to the unpredicted search) *)
  cache : Runtime.Lower.Cache.t option;  (* per-procedure lowering cache *)
  ccache : Runtime.Compile.Cache.t option;  (* compiled-procedure cache *)
  share : share option;  (* batch-reuse table; None disables sharing *)
  eval_stats : eval_stats;
}

(* Effective precision signature of the reachable program under [asg]:
   same shape as [Runtime.Lower]'s cache key, but each real declaration
   reports the kind the assignment gives it rather than the declared one,
   so an atom explicitly assigned its declared kind keys identically to
   one the assignment leaves alone. *)
let share_key p sh asg =
  let buf = Buffer.create 256 in
  List.iter
    (fun scope ->
      (match scope with
      | Fortran.Symtab.Unit_scope u -> Buffer.add_string buf u
      | Fortran.Symtab.Proc_scope pr -> Buffer.add_string buf pr);
      Buffer.add_char buf ':';
      let vars =
        List.sort
          (fun (a : Fortran.Symtab.var_info) (b : Fortran.Symtab.var_info) ->
            compare a.Fortran.Symtab.v_name b.Fortran.Symtab.v_name)
          (Fortran.Symtab.vars_of_scope p.st scope)
      in
      List.iter
        (fun (v : Fortran.Symtab.var_info) ->
          match v.Fortran.Symtab.v_base with
          | Fortran.Ast.Treal _
            when v.Fortran.Symtab.v_init = None
                 && Hashtbl.mem sh.sh_inert (scope, v.Fortran.Symtab.v_name) ->
            ()
          | Fortran.Ast.Treal declared ->
            let k =
              match Transform.Assignment.lookup asg ~scope v.Fortran.Symtab.v_name with
              | Some k -> k
              | None -> declared
            in
            Buffer.add_string buf v.Fortran.Symtab.v_name;
            Buffer.add_string buf (match k with Fortran.Ast.K4 -> "!4;" | Fortran.Ast.K8 -> "!8;")
          | Fortran.Ast.Tinteger | Fortran.Ast.Tlogical -> ())
        vars;
      Buffer.add_char buf '|')
    sh.sh_scopes;
  Buffer.contents buf

let hotspot_time_of procs timers =
  List.fold_left (fun acc p -> acc +. Runtime.Timers.exclusive_of timers p) 0.0 procs

let hotspot_time p timers = hotspot_time_of p.model.Models.Registry.target_procs timers

(* ------------------------------------------------------------------ *)
(* One trip through transformation + dynamic evaluation.               *)

let score_outcome p (out : Runtime.Interp.outcome) : raw =
  let module R = Runtime.Interp in
  let hotspot = hotspot_time p out.R.timers in
  let rel_error =
    match out.R.status with
    | R.Finished ->
      let series = R.series out p.model.Models.Registry.metric_key in
      if series = [] then infinity
      else Metrics.Error.series_rel_error_l2 ~baseline:p.baseline_metric series
    | R.Stopped _ | R.Runtime_error _ | R.Timed_out -> infinity
  in
  {
    r_outcome = Some out;
    r_detail = Format.asprintf "%a" R.pp_status out.R.status;
    r_hotspot = hotspot;
    r_model_time = out.R.cost;
    r_rel_error = rel_error;
  }

let failed_raw detail =
  { r_outcome = None; r_detail = detail; r_hotspot = 0.0; r_model_time = 0.0;
    r_rel_error = infinity }

(* The historical pipeline: unparse the transformed program, reparse the
   text, rebuild the symbol table, typecheck, tree-walk. Kept as the
   [verify_roundtrip] oracle for the fast path. *)
let roundtrip_raw p asg : raw =
  match
    let prog' = Transform.Rewrite.apply p.st asg in
    let w = Transform.Wrappers.insert prog' in
    let text = Fortran.Unparse.program w.Transform.Wrappers.program in
    let prog'' = Fortran.Parser.parse ~file:(p.model.Models.Registry.name ^ "_variant.f90") text in
    let st' = Fortran.Symtab.build prog'' in
    Fortran.Typecheck.check_program st';
    (st', w)
  with
  | exception Fortran.Lexer.Error { message; _ } -> failed_raw ("lexer: " ^ message)
  | exception Fortran.Parser.Error { message; _ } -> failed_raw ("parser: " ^ message)
  | exception Fortran.Typecheck.Error { message; _ } -> failed_raw ("typecheck: " ^ message)
  | exception Fortran.Symtab.Error { message; _ } -> failed_raw ("symtab: " ^ message)
  | st', w ->
    score_outcome p
      (Runtime.Interp.run ~machine:p.config.Config.machine ~budget:p.budget
         ~wrapper_owner:(Transform.Wrappers.owner_fn w) st')

(* The fast path: rewrite and lower the AST directly — no unparse→reparse
   round trip — then execute either the closure-compiled form of the
   slot-resolved IR (default) or the IR itself, reusing lowered and
   compiled procedures whose precision signature is unchanged. *)
let direct_raw p asg : raw =
  match
    let prog' = Transform.Rewrite.apply p.st asg in
    let w = Transform.Wrappers.insert prog' in
    let st' = Fortran.Symtab.build w.Transform.Wrappers.program in
    Fortran.Typecheck.check_program st';
    (st', w)
  with
  | exception Fortran.Typecheck.Error { message; _ } -> failed_raw ("typecheck: " ^ message)
  | exception Fortran.Symtab.Error { message; _ } -> failed_raw ("symtab: " ^ message)
  | st', w ->
    let ir =
      Runtime.Lower.lower ?cache:p.cache ~machine:p.config.Config.machine
        ~wrapper_owner:(Transform.Wrappers.owner_fn w) st'
    in
    let out =
      if p.config.Config.compile then
        Runtime.Compile.run ~budget:p.budget (Runtime.Compile.compile ?cache:p.ccache ir)
      else Runtime.Lower.run ~budget:p.budget ir
    in
    score_outcome p out

(* Serve the raw outcome from the batch-reuse table when an
   effectively-identical variant already ran; otherwise run and publish,
   first write wins (a racing worker adopts the published outcome, so the
   table's contents never depend on scheduling). *)
let shared_raw p asg : raw =
  match p.share with
  | None -> direct_raw p asg
  | Some sh -> (
    let key = share_key p sh asg in
    Mutex.lock sh.sh_lock;
    match Hashtbl.find_opt sh.sh_tbl key with
    | Some raw ->
      Atomic.incr sh.sh_hits;
      Mutex.unlock sh.sh_lock;
      raw
    | None -> (
      Mutex.unlock sh.sh_lock;
      let raw = direct_raw p asg in
      Mutex.lock sh.sh_lock;
      match Hashtbl.find_opt sh.sh_tbl key with
      | Some winner ->
        Atomic.incr sh.sh_hits;
        Mutex.unlock sh.sh_lock;
        winner
      | None ->
        Atomic.incr sh.sh_misses;
        Hashtbl.replace sh.sh_tbl key raw;
        Mutex.unlock sh.sh_lock;
        raw))

let transform_and_run p asg : raw =
  let t0 = Unix.gettimeofday () in
  let raw = shared_raw p asg in
  eval_stats_note p.eval_stats (Unix.gettimeofday () -. t0);
  if p.config.Config.verify_roundtrip then begin
    let slow = roundtrip_raw p asg in
    if compare raw slow <> 0 then
      failwith
        (Printf.sprintf
           "verify-roundtrip: direct and round-trip outcomes differ on %s variant %s\n\
            direct:     %s cost %.17g hotspot %.17g err %.17g\n\
            round-trip: %s cost %.17g hotspot %.17g err %.17g"
           p.model.Models.Registry.name
           (Transform.Assignment.signature asg)
           raw.r_detail raw.r_model_time raw.r_hotspot raw.r_rel_error
           slow.r_detail slow.r_model_time slow.r_hotspot slow.r_rel_error)
  end;
  raw

let noisy_times p ~seed time =
  List.init p.eq1_n (fun run ->
      time *. Runtime.Noise.factor ~seed ~run ~rel_std:p.model.Models.Registry.noise_rel_std)

let measurement_of_raw p asg (raw : raw) : Variant.measurement =
  let module R = Runtime.Interp in
  let status =
    match raw.r_outcome with
    | None -> Variant.Error
    | Some out -> (
      match out.R.status with
      | R.Finished ->
        if raw.r_rel_error <= p.threshold then Variant.Pass else Variant.Fail
      | R.Timed_out -> Variant.Timeout
      | R.Stopped _ | R.Runtime_error _ -> Variant.Error)
  in
  let speedup =
    match status with
    | Variant.Pass | Variant.Fail ->
      let base_time, var_time =
        match p.config.Config.mode with
        | Config.Hotspot_guided -> (p.baseline_hotspot, raw.r_hotspot)
        | Config.Whole_model_guided -> (p.baseline_cost, raw.r_model_time)
      in
      if var_time <= 0.0 then 0.0
      else begin
        let seed = p.config.Config.seed lxor Hashtbl.hash (Transform.Assignment.signature asg) in
        Metrics.Speedup.of_times
          ~baseline:(noisy_times p ~seed:p.config.Config.seed base_time)
          ~variant:(noisy_times p ~seed var_time)
      end
    | Variant.Timeout | Variant.Error -> 0.0
  in
  let proc_stats =
    match raw.r_outcome with
    | None -> []
    | Some out ->
      List.map
        (fun (e : Runtime.Timers.entry) -> (e.Runtime.Timers.name, e.Runtime.Timers.inclusive, e.Runtime.Timers.calls))
        out.R.timers
  in
  let casting_share =
    match raw.r_outcome with
    | Some out -> Runtime.Interp.casting_share out
    | None -> 0.0
  in
  {
    Variant.status;
    speedup;
    rel_error = raw.r_rel_error;
    hotspot_time = raw.r_hotspot;
    model_time = raw.r_model_time;
    proc_stats;
    casting_share;
    detail = raw.r_detail;
  }

(* ------------------------------------------------------------------ *)

let prepare ?(config = Config.default) (model : Models.Registry.t) : prepared =
  let prog = Fortran.Parser.parse ~file:(model.name ^ ".f90") model.source in
  let st = Fortran.Symtab.build prog in
  Fortran.Typecheck.check_program st;
  let atoms =
    Transform.Assignment.atoms_of_target st ~module_:model.target_module
      ~procs:(Some model.target_procs) ~exclude:model.exclude_atoms
  in
  if atoms = [] then invalid_arg ("Tuner.prepare: no FP atoms in " ^ model.target_module);
  let cache =
    if config.Config.proc_cache then Some (Runtime.Lower.Cache.create ()) else None
  in
  let ccache =
    if config.Config.compile then Some (Runtime.Compile.Cache.create ()) else None
  in
  (* sharing is off under verify_roundtrip: the oracle's whole point is to
     actually run both pipelines on every variant *)
  let share =
    if config.Config.batch_reuse && not config.Config.verify_roundtrip then
      Some (share_create st)
    else None
  in
  let out =
    Runtime.Lower.run (Runtime.Lower.lower ?cache ~machine:config.Config.machine st)
  in
  (match out.Runtime.Interp.status with
  | Runtime.Interp.Finished -> ()
  | s ->
    invalid_arg
      (Format.asprintf "Tuner.prepare: baseline %s did not finish: %a" model.name
         Runtime.Interp.pp_status s));
  let baseline_metric = Runtime.Interp.series out model.metric_key in
  if baseline_metric = [] then
    invalid_arg ("Tuner.prepare: baseline produced no '" ^ model.metric_key ^ "' series");
  let baseline_cost = out.Runtime.Interp.cost in
  let baseline_hotspot = hotspot_time_of model.target_procs out.Runtime.Interp.timers in
  let baseline_times =
    List.init config.Config.baseline_runs (fun run ->
        baseline_cost
        *. Runtime.Noise.factor ~seed:config.Config.seed ~run ~rel_std:model.noise_rel_std)
  in
  let eq1_n = Metrics.Speedup.choose_n ~rel_std:(Metrics.Stats.rel_stddev baseline_times) in
  (* Eq. 1's median-of-n tames but does not eliminate noise: a variant
     identical to the baseline still scores ~N(1, rel_std·sqrt(2/n)).
     The acceptance floor must sit below that spread or the search
     rejects parity variants spuriously. *)
  let perf_floor =
    Float.min config.Config.perf_floor
      (1.0 -. (3.0 *. model.noise_rel_std /. sqrt (float_of_int eq1_n)))
  in
  let baseline_static = Analysis.Static_cost.evaluate st in
  let partial =
    {
      model;
      config;
      st;
      atoms;
      baseline_cost;
      baseline_hotspot;
      baseline_metric;
      baseline_timers = out.Runtime.Interp.timers;
      baseline_times;
      threshold = infinity;
      eq1_n;
      perf_floor;
      budget = model.timeout_factor *. baseline_cost;
      baseline_static;
      scorer = None;
      cache;
      ccache;
      share;
      eval_stats = eval_stats_create ();
    }
  in
  let threshold =
    match model.threshold with
    | Models.Registry.Fixed f -> f
    | Models.Registry.From_uniform32 mult ->
      (* the reference is the developer-supported uniform 32-bit BUILD:
         every real declaration in the whole program at kind 4 — not just
         the hotspot's atoms. Mixed f32 hotspots inside an f64 model incur
         boundary re-rounding the consistent build does not, which is why
         the all-lowered hotspot variant can (and here does) exceed this
         threshold, making the search non-trivial, as in the paper. *)
      let whole_atoms =
        List.concat_map
          (fun u -> Transform.Assignment.atoms_of_module st (Fortran.Ast.unit_name u))
          (Fortran.Symtab.program st)
      in
      let asg32 = Transform.Assignment.uniform whole_atoms Fortran.Ast.K4 in
      let raw = transform_and_run partial asg32 in
      if Float.is_finite raw.r_rel_error && raw.r_rel_error > 0.0 then mult *. raw.r_rel_error
      else
        invalid_arg
          (Printf.sprintf
             "Tuner.prepare: cannot derive %s threshold from uniform-32 (error %g, %s)"
             model.name raw.r_rel_error raw.r_detail)
  in
  (* the scorer needs the resolved threshold (From_uniform32 models derive
     it dynamically above), so it is built last *)
  let scorer =
    match config.Config.predict with
    | Config.Predict_off -> None
    | Config.Predict_rank | Config.Predict_prune ->
      Sensitivity.Score.create ~st ~atoms ~metric_key:model.metric_key ~baseline_metric
        ~threshold ~margin:config.Config.predict_margin
  in
  { partial with threshold; scorer }

let statically_filtered p asg =
  p.config.Config.static_filter
  &&
  let prog' = Transform.Rewrite.apply p.st asg in
  match Fortran.Symtab.build prog' with
  | st' ->
    let v = Analysis.Static_cost.evaluate st' in
    Analysis.Static_cost.predicts_worse ~baseline:p.baseline_static ~candidate:v
      ~penalty_budget:p.config.Config.static_penalty_budget
  | exception Fortran.Symtab.Error _ -> false

let evaluate p asg : Variant.measurement =
  if statically_filtered p asg then
    {
      Variant.status = Variant.Fail;
      speedup = 0.0;
      rel_error = infinity;
      hotspot_time = 0.0;
      model_time = 0.0;  (* no dynamic run: costs nothing on the cluster *)
      proc_stats = [];
      casting_share = 0.0;
      detail = "static-filter";
    }
  else
    match p.scorer with
    | Some sc
      when p.config.Config.predict = Config.Predict_prune && Sensitivity.Score.prune sc asg ->
      (* provably hopeless: the finite static error bound already exceeds
         margin × threshold. A pure function of (config, signature), so
         every worker/shard/resume agrees; journaled as a loss record that
         never reached the cluster. *)
      {
        Variant.status = Variant.Fail;
        speedup = 0.0;
        rel_error = infinity;
        hotspot_time = 0.0;
        model_time = 0.0;
        proc_stats = [];
        casting_share = 0.0;
        detail = Printf.sprintf "static: bound %.6g" (Sensitivity.Score.static_bound sc asg);
      }
    | Some _ | None -> measurement_of_raw p asg (transform_and_run p asg)

let uniform32_measurement p =
  measurement_of_raw p
    (Transform.Assignment.uniform p.atoms Fortran.Ast.K4)
    (transform_and_run p (Transform.Assignment.uniform p.atoms Fortran.Ast.K4))

(* ------------------------------------------------------------------ *)

type algo = Brute_force_algo | Delta_debug_algo | Hierarchical_algo

let algo_name = function
  | Brute_force_algo -> "brute_force"
  | Delta_debug_algo -> "delta_debug"
  | Hierarchical_algo -> "hierarchical"

let algo_of_name = function
  | "brute_force" -> Some Brute_force_algo
  | "delta_debug" -> Some Delta_debug_algo
  | "hierarchical" -> Some Hierarchical_algo
  | _ -> None

type backend_stats = {
  compiled_procs : int;  (* distinct procedure bodies closure-compiled *)
  compile_hits : int;  (* compiled procedures served from the cache *)
  reuse_hits : int;  (* variants served from the batch-reuse table *)
  reuse_misses : int;  (* variants that ran and published their outcome *)
}

type sched_stats = {
  sched_shards : int;
  sched_workers : int;
  sched_slots : int;
  sched_sim_hours : float;
  sched_steals : int;
  sched_rounds : int;
  sched_batched : int;
  sched_serial : int;
}

type campaign = {
  prepared : prepared;
  records : Variant.record list;
  summary : Variant.summary;
  minimal : Search.Delta_debug.result option;
  simulated_hours : float;
  eval_ms_mean : float;
  eval_ms_max : float;
  trace_stats : Trace.stats;
  backend : backend_stats;
  sched : sched_stats option;
  preloaded : int;
  interrupted : bool;
  fault_stats : Cluster.Faults.stats option;
}

(* Static-filter and static-prune rejections never reach the cluster, so
   no fault can touch them and they cost no simulated node time; every
   fault-accounting site must agree with [faulted_evaluate]. Both detail
   strings start with "static". *)
let off_cluster (m : Variant.measurement) =
  let d = m.Variant.detail in
  String.length d >= 6 && String.sub d 0 6 = "static"

(* The per-procedure cache keys evaluating [asg] requests from
   [Lower.Cache] and [Compile.Cache], derived statically (rewrite +
   wrapper insertion + symtab, nothing lowered or run). Empty when the
   transformed program does not build — such variants never reached the
   backends either. *)
let variant_cache_keys p asg =
  match
    let prog' = Transform.Rewrite.apply p.st asg in
    let w = Transform.Wrappers.insert prog' in
    Fortran.Symtab.build w.Transform.Wrappers.program
  with
  | exception Fortran.Symtab.Error _ -> []
  | st' -> Runtime.Lower.cache_keys st'

(* Deterministic backend diagnostics: replay the committed record stream
   — identical at every worker and shard count, and covering a resumed
   campaign's journaled prefix — charging the compile and reuse traffic
   a sequential, speculation-free run of exactly these records performs.
   The live cache counters (atomics) keep counting real work, including
   speculation later discarded, which is why they are not reported. *)
let replay_backend p records =
  let compile_on = p.ccache <> None && p.cache <> None in
  let classes = Hashtbl.create 256 in
  let keys_seen = Hashtbl.create 512 in
  let rh = ref 0 and rm = ref 0 and compiled = ref 0 and chits = ref 0 in
  List.iter
    (fun (r : Variant.record) ->
      if not (off_cluster r.Variant.meas) then begin
        let cls =
          match p.share with
          | Some sh -> share_key p sh r.Variant.asg
          | None -> Transform.Assignment.signature r.Variant.asg
        in
        if Hashtbl.mem classes cls then incr rh
        else begin
          Hashtbl.add classes cls ();
          incr rm;
          if compile_on then
            List.iter
              (fun k ->
                if Hashtbl.mem keys_seen k then incr chits
                else begin
                  Hashtbl.add keys_seen k ();
                  incr compiled
                end)
              (variant_cache_keys p r.Variant.asg)
        end
      end)
    records;
  {
    compiled_procs = !compiled;
    compile_hits = !chits;
    reuse_hits = (if p.share = None then 0 else !rh);
    reuse_misses = (if p.share = None then 0 else !rm);
  }

let finish_campaign ?(preloaded = 0) ?(interrupted = false) ?fault_stats ?sched p trace
    minimal =
  let records = Trace.records trace in
  let cluster = Cluster.for_model p.model in
  let simulated_hours =
    Cluster.campaign_hours cluster ~baseline_cost:p.baseline_cost
      ~variant_costs:(List.map (fun (r : Variant.record) -> r.Variant.meas.Variant.model_time) records)
  in
  let count, total, max_s = eval_stats_read p.eval_stats in
  {
    prepared = p;
    records;
    summary = Variant.summarize records;
    minimal;
    simulated_hours;
    eval_ms_mean = (if count = 0 then 0.0 else 1e3 *. total /. float_of_int count);
    eval_ms_max = 1e3 *. max_s;
    trace_stats = Trace.stats trace;
    backend = replay_backend p records;
    sched;
    preloaded;
    interrupted;
    fault_stats;
  }

let max_variants_of p =
  match p.config.Config.max_variants with
  | Some _ as v -> v
  | None -> p.model.Models.Registry.max_variants

let default_workers = Pool.default_workers

(* [workers]: None = one per spare core, 0 = sequential. Without a
   borrowed [pool] the pool lives for exactly one campaign; a caller that
   multiplexes several campaigns over one substrate lends its own pool,
   which is used whenever the effective worker count is positive and is
   never shut down here. *)
let with_pool_opt ?pool workers f =
  let w = match workers with Some w -> w | None -> default_workers () in
  if w <= 0 then f None
  else
    match pool with
    | Some _ as borrowed -> f borrowed
    | None -> Pool.with_pool ~workers:w (fun pool -> f (Some pool))

(* Atoms grouped by connected components of the interprocedural FP flow
   graph: variables linked by parameter passing move together in the
   hierarchical search. *)
let flow_groups p =
  let atoms = p.atoms in
  let n = List.length atoms in
  let index = Hashtbl.create n in
  List.iteri
    (fun i (a : Transform.Assignment.atom) ->
      Hashtbl.replace index (a.Transform.Assignment.a_scope, a.Transform.Assignment.a_name) i)
    atoms;
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let graph = Analysis.Flowgraph.build p.st in
  List.iter
    (fun (e : Analysis.Flowgraph.edge) ->
      match e.Analysis.Flowgraph.e_actual with
      | Some a -> (
        let dummy = e.Analysis.Flowgraph.e_dummy in
        match
          ( Hashtbl.find_opt index (a.Analysis.Flowgraph.n_scope, a.Analysis.Flowgraph.n_var),
            Hashtbl.find_opt index (dummy.Analysis.Flowgraph.n_scope, dummy.Analysis.Flowgraph.n_var) )
        with
        | Some i, Some j -> union i j
        | _ -> ())
      | None -> ())
    (Analysis.Flowgraph.edges graph);
  let buckets = Hashtbl.create n in
  List.iteri
    (fun i a ->
      let r = find i in
      Hashtbl.replace buckets r (a :: Option.value ~default:[] (Hashtbl.find_opt buckets r)))
    atoms;
  Hashtbl.fold (fun _ g acc -> List.rev g :: acc) buckets []
  |> List.sort (fun a b ->
         compare
           (List.map Transform.Assignment.atom_id a)
           (List.map Transform.Assignment.atom_id b))

(* ------------------------------------------------------------------ *)
(* Durable campaigns: write-ahead journal, fault injection, resume.    *)

type journal_ctx = {
  jw : Persist.Journal.writer;
  jdir : string;
  jcluster : Cluster.t;
  jbaseline_cost : float;
  jfaults : Cluster.Faults.state option;
  mutable jhours : float;  (* simulated cluster hours, incl. fault losses *)
  mutable jrecords : int;
  mutable jbest : float;
}

type progress = { pg_records : int; pg_hours : float; pg_best : float }

exception Paused

let progress_of jc = { pg_records = jc.jrecords; pg_hours = jc.jhours; pg_best = jc.jbest }

let snapshot_every = 32

let hours_of_seconds jc secs = secs /. float_of_int jc.jcluster.nodes /. 3600.0

(* Simulated cluster seconds one committed record accounts for, including
   the node time its injected-fault retries burned. *)
let record_seconds jc ~signature (m : Variant.measurement) =
  let model_time = m.Variant.model_time in
  let run = Cluster.variant_seconds jc.jcluster ~baseline_cost:jc.jbaseline_cost ~variant_cost:model_time in
  let lost =
    match jc.jfaults with
    | Some f when not (off_cluster m) ->
      Cluster.Faults.lost_seconds (Cluster.Faults.spec f) jc.jcluster
        ~baseline_cost:jc.jbaseline_cost ~signature ~model_time
    | Some _ | None -> 0.0
  in
  run +. lost

let snapshot_of_ctx jc ~finished =
  let fstats =
    match jc.jfaults with Some f -> Cluster.Faults.stats f | None -> Cluster.Faults.zero_stats
  in
  {
    Persist.Snapshot.s_records = jc.jrecords;
    s_hours = jc.jhours;
    s_best_speedup = jc.jbest;
    s_lost_seconds = fstats.Cluster.Faults.lost_node_seconds;
    s_preemptions = fstats.Cluster.Faults.preemptions;
    s_finished = finished;
  }

let note_record jc ~signature (m : Variant.measurement) =
  jc.jhours <- jc.jhours +. hours_of_seconds jc (record_seconds jc ~signature m);
  jc.jrecords <- jc.jrecords + 1;
  if m.Variant.status = Variant.Pass && m.Variant.speedup > jc.jbest then
    jc.jbest <- m.Variant.speedup

(* The trace's append sink: journal the record (write-ahead, fsynced),
   settle the cluster books, checkpoint periodically, and only then let a
   caller's checkpoint hook or a configured preemption kill the "job" —
   the record is already durable either way, so interrupting here is
   always resumable with zero re-evaluation. *)
let journal_sink ?checkpoint ?(shared_pending = fun () -> None) p jc (r : Variant.record) =
  let entry = Persist.Journal.entry_of_record r in
  let entry =
    match p.scorer with
    | Some sc ->
      {
        entry with
        Persist.Journal.e_score = Some (Sensitivity.Score.score sc r.Variant.asg);
        e_bound = Some (Sensitivity.Score.static_bound sc r.Variant.asg);
      }
    | None -> entry
  in
  Persist.Journal.append jc.jw entry;
  (* provenance for a memo-served record, staged by the trace's on_shared
     hook in the same locked critical section — written right after the
     record line so a crash between the two loses only the annotation *)
  (match shared_pending () with
  | Some sh -> Persist.Journal.append_shared jc.jw sh
  | None -> ());
  let signature = Transform.Assignment.signature r.Variant.asg in
  (match jc.jfaults with
  | Some f when not (off_cluster r.Variant.meas) ->
    ignore
      (Cluster.Faults.note_commit f jc.jcluster ~baseline_cost:jc.jbaseline_cost ~signature
         ~model_time:r.Variant.meas.Variant.model_time)
  | Some _ | None -> ());
  note_record jc ~signature r.Variant.meas;
  if jc.jrecords mod snapshot_every = 0 then
    Persist.Snapshot.write ~dir:jc.jdir (snapshot_of_ctx jc ~finished:false);
  Option.iter (fun cp -> cp (progress_of jc)) checkpoint;
  match jc.jfaults with
  | Some f -> Cluster.Faults.check_preempt f ~hours:jc.jhours
  | None -> ()

(* Variant evaluation with injected faults applied: what the search (and
   hence the trace and journal) observes. Static-filter rejections never
   reach the cluster, so no fault can touch them. *)
let apply_faults faults ~signature m =
  match faults with
  | None -> m
  | Some fspec -> if off_cluster m then m else Cluster.Faults.perturb fspec ~signature m

let faulted_evaluate p faults asg =
  apply_faults faults
    ~signature:(Transform.Assignment.signature asg)
    (evaluate p asg)

(* Fleet-wide evaluation memo hooks (the service's cross-campaign memo
   plugs in here; solo campaigns pass none). The memo stores {e pre-fault}
   measurements — a pure function of (model source, config digest,
   signature), identical whichever campaign in the space computes it —
   and each consuming campaign applies its own fault perturbation (a pure
   function of its fault spec and the signature), so a memo-served record
   is bit-identical to the one the campaign would have evaluated itself.
   [memo_find] returns the measurement plus the donor campaign's id for
   the journal's provenance annotation. *)
type memo_hooks = {
  memo_find : signature:string -> (Variant.measurement * string) option;
  memo_publish : signature:string -> Variant.measurement -> unit;
}

let execute p ~algo ?workers ?shards ?pool ?journal ?faults ?checkpoint ?memo ~preloaded () =
  let fstate = Option.map Cluster.Faults.create faults in
  let jctx =
    Option.map
      (fun (jdir, jw) ->
        {
          jw;
          jdir;
          jcluster = Cluster.for_model p.model;
          jbaseline_cost = p.baseline_cost;
          jfaults = fstate;
          jhours = 0.0;
          jrecords = 0;
          jbest = 0.0;
        })
      journal
  in
  (* the journaled prefix already consumed cluster hours: continue the
     accounting (and the preemption clock) from there *)
  Option.iter
    (fun jc ->
      List.iter
        (fun (r : Variant.record) ->
          note_record jc
            ~signature:(Transform.Assignment.signature r.Variant.asg)
            r.Variant.meas)
        preloaded)
    jctx;
  (* Fleet memo wiring. [shared_lookup] runs outside the trace lock: it
     asks the memo for a pre-fault measurement, stashes the donor id
     keyed by signature, and applies this campaign's own fault
     perturbation so the trace commits exactly what a live evaluation
     would have. [on_shared] then fires under the trace lock, immediately
     before the journal sink, staging the provenance annotation the sink
     appends right after the record line. *)
  let donor_lock = Mutex.create () in
  let donors : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let pending : Persist.Journal.shared option ref = ref None in
  let shared_lookup =
    Option.map
      (fun h asg ->
        let signature = Transform.Assignment.signature asg in
        match h.memo_find ~signature with
        | None -> None
        | Some (m, donor) ->
          Mutex.lock donor_lock;
          Hashtbl.replace donors signature donor;
          Mutex.unlock donor_lock;
          Some (apply_faults faults ~signature m))
      memo
  in
  let on_shared =
    Option.map
      (fun (_ : memo_hooks) (r : Variant.record) ->
        let signature = Transform.Assignment.signature r.Variant.asg in
        let donor =
          Mutex.lock donor_lock;
          let d = Hashtbl.find_opt donors signature in
          Mutex.unlock donor_lock;
          Option.value ~default:"" d
        in
        pending :=
          Some
            { Persist.Journal.sh_index = r.Variant.index; sh_signature = signature;
              sh_donor = donor })
      memo
  in
  let shared_pending () =
    let sh = !pending in
    pending := None;
    sh
  in
  let sink = Option.map (fun jc -> journal_sink ?checkpoint ~shared_pending p jc) jctx in
  let trace =
    Trace.create ?max_variants:(max_variants_of p) ?shared_lookup ?on_shared ?sink ()
  in
  Trace.preload trace preloaded;
  let eval =
    match memo with
    | None -> faulted_evaluate p faults
    | Some h ->
      (* publish the pre-fault measurement of every fresh evaluation;
         preloaded (journal-replayed) records are not republished — their
         stored values are post-fault *)
      fun asg ->
        let signature = Transform.Assignment.signature asg in
        let m = evaluate p asg in
        h.memo_publish ~signature m;
        apply_faults faults ~signature m
  in
  (* schedule effectively-identical candidates on one pool worker so the
     batch-reuse table is hit instead of raced *)
  let affinity = Option.map (fun sh asg -> share_key p sh asg) p.share in
  (* simulated node-seconds of one evaluation, for the shard scheduler's
     cluster clock; statically filtered variants never leave the login
     node *)
  let sched_cluster = Cluster.for_model p.model in
  let cost (m : Variant.measurement) =
    if off_cluster m then 0.0
    else
      Cluster.variant_seconds sched_cluster ~baseline_cost:p.baseline_cost
        ~variant_cost:m.Variant.model_time
  in
  let sched = ref None in
  let note_sched sh =
    let s = Shard.stats sh in
    sched :=
      Some
        {
          sched_shards = Shard.shards sh;
          sched_workers = Shard.workers sh;
          sched_slots = Shard.slots sh;
          sched_sim_hours = s.Shard.sim_seconds /. 3600.0;
          sched_steals = s.Shard.stolen;
          sched_rounds = s.Shard.rounds;
          sched_batched = s.Shard.batched;
          sched_serial = s.Shard.serial_tasks;
        }
  in
  (* [shards] replaces the pool with a work-stealing shard scheduler;
     its stats are harvested even when a preemption aborts the search *)
  (* between-batch yield: a second look for the checkpoint hook, so a
     multiplexing caller can pause even a stretch served entirely from
     the memo cache (which commits no fresh records and hence never
     fires the journal sink) *)
  let yield =
    match (jctx, checkpoint) with
    | Some jc, Some cp -> Some (fun () -> cp (progress_of jc))
    | _ -> None
  in
  let with_sched f =
    match shards with
    | None -> with_pool_opt ?pool workers (fun pool -> f pool None)
    | Some s ->
      let w = max 0 (match workers with Some w -> w | None -> default_workers ()) in
      Shard.with_shards ?yield ~shards:(max 1 s) ~workers:w (fun sh ->
          Fun.protect ~finally:(fun () -> note_sched sh) (fun () -> f None (Some sh)))
  in
  let dd_config = { Delta_debug.error_threshold = p.threshold; perf_floor = p.perf_floor } in
  (* rank (and prune, which implies rank) demotes predicted-fail ddmin
     candidates with the Sensitivity.Rank evidence engine. Evidence is
     fed from committed records in consumption order — identical at every
     worker/shard/slice count and under resume — so the steered
     trajectory is deterministic (DESIGN.md §13) *)
  let ranker =
    match p.scorer with
    | Some sc when p.config.Config.predict <> Config.Predict_off ->
      let safe =
        List.filter
          (fun a ->
            match Sensitivity.Score.atom_bound sc a with
            | Some b -> Float.is_finite b && b <= p.threshold
            | None -> false)
          p.atoms
      in
      let rk =
        Sensitivity.Rank.create ~st:p.st ~atoms:p.atoms ~safe ~perf_floor:p.perf_floor
      in
      Some
        {
          Delta_debug.note =
            (fun asg (m : Variant.measurement) ->
              (* error side to blame unless the run finished within the
                 threshold (a timeout says nothing about the error);
                 perf side to blame on a timeout or a sub-floor speedup *)
              let err_ok =
                (m.Variant.status = Variant.Pass && m.Variant.rel_error <= p.threshold)
                || m.Variant.status = Variant.Timeout
              in
              let perf_ok =
                m.Variant.status <> Variant.Timeout && m.Variant.speedup >= p.perf_floor
              in
              Sensitivity.Rank.observe rk asg
                { Sensitivity.Rank.err_ok; perf_ok; speedup = m.Variant.speedup });
          round = (fun () -> Sensitivity.Rank.round rk);
          demote = (fun asg -> Sensitivity.Rank.demote rk asg);
        }
    | Some _ | None -> None
  in
  let interrupted = ref false in
  let minimal =
    try
      (* a journaled prefix may already exhaust a caller's quota: give the
         checkpoint one look before any fresh work is scheduled *)
      (match (jctx, checkpoint) with
      | Some jc, Some cp -> cp (progress_of jc)
      | _ -> ());
      match algo with
      | Brute_force_algo ->
        (* a budget truncates the enumeration rather than aborting the
           campaign, mirroring the delta-debug searches *)
        (try ignore (Brute_force.search ~atoms:p.atoms ~trace ~evaluate:eval ())
         with Trace.Budget_exhausted -> ());
        None
      | Delta_debug_algo ->
        Some
          (with_sched (fun pool shard ->
               Delta_debug.search ?pool ?shard ~cost ?affinity ?ranker ~atoms:p.atoms ~trace
                 ~evaluate:eval dd_config))
      | Hierarchical_algo ->
        Some
          (with_sched (fun pool shard ->
               Hierarchical.search ?pool ?shard ~cost ?affinity ?ranker ~atoms:p.atoms
                 ~groups:(flow_groups p) ~trace ~evaluate:eval dd_config))
    with Cluster.Faults.Preempted _ | Paused ->
      interrupted := true;
      None
  in
  Option.iter
    (fun jc ->
      Persist.Snapshot.write ~dir:jc.jdir (snapshot_of_ctx jc ~finished:(not !interrupted));
      Persist.Journal.close jc.jw)
    jctx;
  finish_campaign
    ~preloaded:(List.length preloaded)
    ~interrupted:!interrupted
    ?fault_stats:(Option.map Cluster.Faults.stats fstate)
    ?sched:!sched p trace minimal

let journal_header p ~algo ~workers =
  {
    Persist.Journal.version = 1;
    model = p.model.Models.Registry.name;
    algo = algo_name algo;
    seed = p.config.Config.seed;
    config_digest = Config.digest p.config;
    workers = (match workers with Some w -> w | None -> default_workers ());
    atoms = List.length p.atoms;
    (* every journal this writer produces may carry provenance lines, so
       solo and service headers stay byte-identical *)
    caps = [ "shared" ];
  }

let start_journal p ~algo ~workers dir =
  (dir, Persist.Journal.create ~dir (journal_header p ~algo ~workers))

let run_algo ~algo ?config ?workers ?shards ?pool ?journal ?faults ?checkpoint ?memo model =
  let p = prepare ?config model in
  let journal = Option.map (start_journal p ~algo ~workers) journal in
  execute p ~algo ?workers ?shards ?pool ?journal ?faults ?checkpoint ?memo ~preloaded:[] ()

let run_delta_debug ?config ?workers ?shards ?pool ?journal ?faults ?checkpoint ?memo model =
  run_algo ~algo:Delta_debug_algo ?config ?workers ?shards ?pool ?journal ?faults
    ?checkpoint ?memo model

let run_brute_force ?config ?journal ?faults ?checkpoint ?memo model =
  run_algo ~algo:Brute_force_algo ~workers:0 ?config ?journal ?faults ?checkpoint ?memo model

let run_hierarchical ?config ?workers ?shards ?pool ?journal ?faults ?checkpoint ?memo model =
  run_algo ~algo:Hierarchical_algo ?config ?workers ?shards ?pool ?journal ?faults
    ?checkpoint ?memo model

let run_random ?config ~samples model =
  let p = prepare ?config model in
  let trace = Trace.create ?max_variants:(max_variants_of p) () in
  let _records =
    Random_walk.search ~atoms:p.atoms ~trace ~evaluate:(evaluate p) ~samples
      ~seed:p.config.Config.seed ()
  in
  finish_campaign p trace None

(* ------------------------------------------------------------------ *)
(* Resume: replay the journal into the trace's memo cache, then re-run
   the (deterministic) search. The journaled prefix is served from the
   cache — zero fresh evaluations — and the search continues beyond it
   exactly as the uninterrupted campaign would have. *)

exception Resume_mismatch of string

let resume_fail fmt = Printf.ksprintf (fun s -> raise (Resume_mismatch s)) fmt

let record_of_entry atoms (e : Persist.Journal.entry) : Variant.record =
  {
    Variant.index = e.Persist.Journal.e_index;
    asg = Transform.Assignment.of_signature atoms e.Persist.Journal.e_signature;
    meas = e.Persist.Journal.e_meas;
  }

let resume ?(config = Config.default) ?workers ?shards ?pool ?faults ?checkpoint ?memo ?model
    ~journal:dir () =
  let loaded, jw = Persist.Journal.reopen ~dir () in
  let h = loaded.Persist.Journal.l_header in
  let model =
    match model with
    | Some m -> m
    | None -> (
      match Models.Registry.find h.Persist.Journal.model with
      | m -> m
      | exception _ ->
        resume_fail "resume: journal is for unknown model %S" h.Persist.Journal.model)
  in
  if model.Models.Registry.name <> h.Persist.Journal.model then
    resume_fail "resume: journal is for model %S, not %S" h.Persist.Journal.model
      model.Models.Registry.name;
  let algo =
    match algo_of_name h.Persist.Journal.algo with
    | Some a -> a
    | None -> resume_fail "resume: journal has unknown algorithm %S" h.Persist.Journal.algo
  in
  (* the journal's seed is authoritative: the campaign being continued was
     run with it, and a different seed would change every measurement *)
  let config = { config with Config.seed = h.Persist.Journal.seed } in
  if Config.digest config <> h.Persist.Journal.config_digest then
    resume_fail
      "resume: configuration digest mismatch (journal %s, offered %s) — the journaled \
       campaign ran under different tuning settings"
      h.Persist.Journal.config_digest (Config.digest config);
  let p = prepare ~config model in
  if List.length p.atoms <> h.Persist.Journal.atoms then
    resume_fail "resume: model has %d FP atoms but the journal recorded %d"
      (List.length p.atoms) h.Persist.Journal.atoms;
  let preloaded =
    List.map (record_of_entry p.atoms) loaded.Persist.Journal.l_entries
  in
  execute p ~algo ?workers ?shards ?pool ~journal:(dir, jw) ?faults ?checkpoint ?memo
    ~preloaded ()
