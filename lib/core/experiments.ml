type suite = {
  funarc : Tuner.campaign;
  mpas : Tuner.campaign;
  adcirc : Tuner.campaign;
  mom6 : Tuner.campaign;
  mpas_whole : Tuner.campaign;
  whole_model_joint : Tuner.campaign;
}

let funarc_campaign ?config () = Tuner.run_brute_force ?config Models.Registry.funarc

let hotspot_campaign ?config ?workers name =
  Tuner.run_delta_debug ?config ?workers (Models.Registry.find name)

let whole_model_campaign ?(config = Config.default) ?workers ?shards () =
  Tuner.run_delta_debug
    ~config:{ config with Config.mode = Config.Whole_model_guided }
    ?workers ?shards Models.Registry.mpas

let joint_campaign ?(config = Config.default) ?workers ?shards () =
  Tuner.run_delta_debug
    ~config:{ config with Config.mode = Config.Whole_model_guided }
    ?workers ?shards Models.Registry.mpas_joint

let run_suite ?config ?workers ?shards () =
  {
    funarc = funarc_campaign ?config ();
    mpas = hotspot_campaign ?config ?workers "mpas";
    adcirc = hotspot_campaign ?config ?workers "adcirc";
    mom6 = hotspot_campaign ?config ?workers "mom6";
    mpas_whole = whole_model_campaign ?config ?workers ?shards ();
    whole_model_joint = joint_campaign ?config ?workers ?shards ();
  }

type ablation = {
  label : string;
  baseline_campaign : Tuner.campaign;
  treated_campaign : Tuner.campaign;
  narrative : string;
}

let ablation_static_filter ?(config = Config.default) () =
  let base = Tuner.run_delta_debug ~config Models.Registry.mpas in
  let treated =
    Tuner.run_delta_debug ~config:{ config with Config.static_filter = true }
      Models.Registry.mpas
  in
  {
    label = "static variant filtering (Sec. V) on MPAS-A";
    baseline_campaign = base;
    treated_campaign = treated;
    narrative =
      "The Sec.-V recommendation: before dynamic evaluation, reject variants that \
       vectorize fewer loops than the baseline or whose flow-graph casting penalty \
       exceeds a budget. Filtered variants cost no cluster time (they are counted \
       as failures without execution).";
  }

let ablation_no_simd ?(config = Config.default) () =
  let base = Tuner.run_delta_debug ~config Models.Registry.mpas in
  let treated =
    Tuner.run_delta_debug
      ~config:{ config with Config.machine = Runtime.Machine.scalar }
      Models.Registry.mpas
  in
  {
    label = "no-SIMD machine (criterion 1 ablated) on MPAS-A";
    baseline_campaign = base;
    treated_campaign = treated;
    narrative =
      "Criterion (1): reduced precision pays off mainly through wider vectors. On a \
       machine without SIMD the same search finds only the residual gains (cheaper \
       division/intrinsics and memory traffic).";
  }

let ablation_search ?(config = Config.default) () =
  let base = Tuner.run_delta_debug ~config Models.Registry.mpas in
  let budget =
    match base.Tuner.records with rs -> List.length rs
  in
  let treated =
    Tuner.run_random ~config:{ config with Config.max_variants = Some budget } ~samples:(4 * budget)
      Models.Registry.mpas
  in
  {
    label = "delta debugging vs random sampling at equal budget (MPAS-A)";
    baseline_campaign = base;
    treated_campaign = treated;
    narrative =
      "The canonical delta-debugging strategy against naive random subsets, both \
       allowed the same number of dynamic evaluations.";
  }

let ablation_hierarchical ?(config = Config.default) () =
  let base = Tuner.run_delta_debug ~config Models.Registry.mom6 in
  let treated = Tuner.run_hierarchical ~config Models.Registry.mom6 in
  {
    label = "flat delta debugging vs flow-graph-clustered search (MOM6)";
    baseline_campaign = base;
    treated_campaign = treated;
    narrative =
      "Sec. V: clustering variables by the interprocedural FP flow graph lets the \
       search move parameter-passing-coupled variables together, avoiding the \
       wrapper-overhead pathology mid-search and shrinking the effective space \
       (HiFPTuner's community structure, Yao & Xue's manual clusters).";
  }

let render_ablation a =
  let line label (c : Tuner.campaign) =
    let s = c.Tuner.summary in
    Printf.sprintf
      "  %-10s %4d variants, pass %5.1f%%, best %.2fx, simulated %.1f h%s\n" label
      s.Search.Variant.total s.Search.Variant.pass_pct s.Search.Variant.best_speedup
      c.Tuner.simulated_hours
      (match c.Tuner.minimal with
      | Some r ->
        Printf.sprintf ", 1-minimal keeps %d atoms" (List.length r.Search.Delta_debug.high_set)
      | None -> "")
  in
  Printf.sprintf "ABLATION: %s\n%s%s%s\n" a.label (line "baseline" a.baseline_campaign)
    (line "treated" a.treated_campaign) ("  " ^ a.narrative)
