type mode =
  | Hotspot_guided
  | Whole_model_guided

type predict =
  | Predict_off
  | Predict_rank
  | Predict_prune

type t = {
  machine : Runtime.Machine.t;
  mode : mode;
  perf_floor : float;
  seed : int;
  baseline_runs : int;
  static_filter : bool;
  static_penalty_budget : float;
  max_variants : int option;
  predict : predict;
  predict_margin : float;
  proc_cache : bool;
  verify_roundtrip : bool;
  compile : bool;
  batch_reuse : bool;
}

let default =
  {
    machine = Runtime.Machine.default;
    mode = Hotspot_guided;
    perf_floor = 0.95;
    seed = 42;
    baseline_runs = 10;
    static_filter = false;
    static_penalty_budget = 5.0e4;
    max_variants = None;
    predict = Predict_off;
    predict_margin = 1e6;
    proc_cache = true;
    verify_roundtrip = false;
    compile = true;
    batch_reuse = true;
  }

let digest t =
  (* only fields that change campaign results; proc_cache,
     verify_roundtrip, compile and batch_reuse are execution strategies
     with identical outcomes, so a journaled campaign may be resumed with
     any of those settings *)
  let canonical =
    String.concat "|"
      [
        Digest.to_hex (Digest.string (Marshal.to_string t.machine []));
        (match t.mode with Hotspot_guided -> "hotspot" | Whole_model_guided -> "whole");
        Printf.sprintf "%h" t.perf_floor;
        string_of_int t.seed;
        string_of_int t.baseline_runs;
        string_of_bool t.static_filter;
        Printf.sprintf "%h" t.static_penalty_budget;
        (match t.max_variants with None -> "-" | Some n -> string_of_int n);
      ]
  in
  (* predict fields are appended only when active, so every digest minted
     before they existed — and every off-mode campaign — is unchanged *)
  let canonical =
    match t.predict with
    | Predict_off -> canonical
    | Predict_rank -> canonical ^ Printf.sprintf "|predict:rank|margin:%h" t.predict_margin
    | Predict_prune -> canonical ^ Printf.sprintf "|predict:prune|margin:%h" t.predict_margin
  in
  Digest.to_hex (Digest.string canonical)
