type mode =
  | Hotspot_guided
  | Whole_model_guided

type t = {
  machine : Runtime.Machine.t;
  mode : mode;
  perf_floor : float;
  seed : int;
  baseline_runs : int;
  static_filter : bool;
  static_penalty_budget : float;
  max_variants : int option;
  proc_cache : bool;
  verify_roundtrip : bool;
}

let default =
  {
    machine = Runtime.Machine.default;
    mode = Hotspot_guided;
    perf_floor = 0.95;
    seed = 42;
    baseline_runs = 10;
    static_filter = false;
    static_penalty_budget = 5.0e4;
    max_variants = None;
    proc_cache = true;
    verify_roundtrip = false;
  }
