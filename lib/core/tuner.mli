(** The Fig.-1 tuning cycle, assembled.

    [prepare] performs the one-time preprocessing ([T₀]: parse, search
    space construction, baseline profiling, threshold resolution);
    [evaluate] is one trip around the cycle for one precision assignment
    ([T₂]–[T₄]: source-to-source transformation with wrapper insertion,
    strict typecheck of the transformed AST, lowering to the
    slot-resolved IR with per-procedure caching, execution under the
    cost model with the 3× timeout budget, correctness and Eq.-1 speedup
    scoring); the campaign runners drive the search algorithms over it.
    The historical unparse → reparse pipeline survives as the
    [verify_roundtrip] cross-check. *)

type eval_stats
(** Mutable per-campaign evaluation wall-clock accounting (count, total,
    max); safe to update from pool worker domains. *)

type share
(** The batch-reuse table: raw outcomes shared between variants whose
    effective precision signature (declared kinds overridden by the
    assignment) agrees on every scope that can influence the run — all
    unit scopes plus every procedure reachable from the main program.
    Mutex-guarded, first write wins, so the records a campaign commits
    never depend on the worker count. *)

type prepared = {
  model : Models.Registry.t;
  config : Config.t;
  st : Fortran.Symtab.t;  (** baseline program's symbol table *)
  atoms : Transform.Assignment.atom list;  (** the search space (Sec. III-A) *)
  baseline_cost : float;  (** modeled whole-run CPU time of the baseline *)
  baseline_hotspot : float;  (** exclusive time of the targeted procedures *)
  baseline_metric : float list;  (** per-step correctness series *)
  baseline_timers : Runtime.Timers.entry list;
  baseline_times : float list;  (** the 10-member noisy ensemble (Sec. IV-A) *)
  threshold : float;  (** resolved error threshold *)
  eq1_n : int;  (** Eq. 1's n, chosen from the ensemble's relative std *)
  perf_floor : float;
      (** noise-adjusted acceptance floor: the configured floor, capped at
          3σ below parity for the model's Eq.-1 noise *)
  budget : float;  (** variant timeout: timeout_factor × baseline cost *)
  baseline_static : Analysis.Static_cost.verdict;
  scorer : Sensitivity.Score.t option;
      (** the error-amplification scorer steering {!Config.predict}
          rank/prune; [None] when predict is off, or when the mirror
          analysis declined to vouch for itself
          ({!Sensitivity.Score.create} returned [None]) and the campaign
          fell back to the unpredicted search *)
  cache : Runtime.Lower.Cache.t option;
      (** the campaign's per-procedure lowering cache ([None] when
          {!Config.t.proc_cache} is off); domain-safe, shared by pool
          workers *)
  ccache : Runtime.Compile.Cache.t option;
      (** the campaign's compiled-procedure cache, keyed by the same
          precision-signature scheme as [cache] ([None] when
          {!Config.t.compile} is off) *)
  share : share option;
      (** the batch-reuse table ([None] when {!Config.t.batch_reuse} is
          off, or under [verify_roundtrip], whose point is to really run
          every variant) *)
  eval_stats : eval_stats;
}

val prepare : ?config:Config.t -> Models.Registry.t -> prepared
(** Raises on a malformed model program (parse/typecheck failures are
    bugs in the model, not variant outcomes). *)

val hotspot_time : prepared -> Runtime.Timers.entry list -> float
(** Sum of exclusive times of the targeted procedures — GPTL-style
    hotspot CPU time (Sec. III-E). *)

val evaluate : prepared -> Transform.Assignment.t -> Search.Variant.measurement
(** One dynamic evaluation via the fast path: rewrite → wrapper insertion
    → symtab + typecheck on the transformed AST directly → {!Runtime.Lower}
    slot-resolved IR (cached per procedure) → IR execution. Never raises
    on variant failures: transformation or execution failures become
    [Error]-status measurements. When the static filter is enabled,
    statically-rejected variants return a zero-cost [Fail] measurement
    with detail ["static-filter"].

    When {!Config.t.verify_roundtrip} is set, every evaluation
    additionally runs the historical unparse → reparse → tree-walk
    pipeline and raises [Failure] if any outcome bit differs — the fast
    path's correctness oracle.

    Re-entrant: each call allocates its own transformation and execution
    state and only reads the shared [prepared] value (the lowering cache
    is mutex-guarded), so concurrent calls from pool workers are safe. *)

type algo = Brute_force_algo | Delta_debug_algo | Hierarchical_algo
(** The resumable search algorithms. Journals name them so [resume] can
    continue the right search. *)

val algo_name : algo -> string
(** ["brute_force"], ["delta_debug"], ["hierarchical"]. *)

val algo_of_name : string -> algo option

type backend_stats = {
  compiled_procs : int;
      (** distinct procedure bodies translated to closures over the whole
          campaign *)
  compile_hits : int;  (** compiled procedures served from the cache *)
  reuse_hits : int;
      (** committed variants the batch-reuse table answers without
          running anything *)
  reuse_misses : int;  (** committed variants that run and publish their outcome *)
}
(** Evaluation-backend traffic — all zero when the corresponding
    {!Config.t} switches are off. Derived by replaying the committed
    record stream in commit order (batch-reuse classes first, then the
    per-procedure cache keys of each fresh class), so the numbers are
    identical at every worker and shard count — speculative evaluations
    a parallel round later discards never show up — and a resumed
    campaign reports the same counters as an uninterrupted one. The
    caches' own live counters (atomics aggregated across domains) keep
    counting real work and are deliberately not reported. *)

type sched_stats = {
  sched_shards : int;  (** simulated node-shards *)
  sched_workers : int;  (** evaluation slots per shard ([0] = sequential) *)
  sched_slots : int;  (** total simulated slots (1 when workers = 0) *)
  sched_sim_hours : float;
      (** simulated cluster wall clock: per-round work-stealing makespans
          plus serially accounted on-demand evaluations *)
  sched_steals : int;  (** tasks a non-home shard slot executed *)
  sched_rounds : int;  (** speculative batches scheduled *)
  sched_batched : int;  (** tasks that went through the sharded deques *)
  sched_serial : int;  (** on-demand evaluations accounted serially *)
}
(** Shard-scheduler accounting for campaigns run with [?shards]. The
    simulated clock is a deterministic function of the committed
    trajectory and the partition — not of real thread interleaving — so
    scaling curves reproduce on any machine. Kept out of the summary:
    summaries stay bit-identical across every shards × workers point. *)

type campaign = {
  prepared : prepared;
  records : Search.Variant.record list;  (** every distinct variant, in order *)
  summary : Search.Variant.summary;  (** the Table-II row *)
  minimal : Search.Delta_debug.result option;  (** [None] for brute force *)
  simulated_hours : float;  (** Sec.-IV-A cluster accounting *)
  eval_ms_mean : float;  (** mean wall-clock milliseconds per dynamic evaluation *)
  eval_ms_max : float;  (** slowest single evaluation, milliseconds *)
  trace_stats : Search.Trace.stats;
      (** memo-cache traffic; [misses] counts fresh dynamic evaluations,
          so a resumed campaign proves it re-evaluated nothing journaled
          by [misses = length records - preloaded] *)
  backend : backend_stats;  (** compile and batch-reuse traffic *)
  sched : sched_stats option;  (** [Some] iff the campaign ran with [?shards] *)
  preloaded : int;  (** records replayed from a journal (0 for fresh runs) *)
  interrupted : bool;
      (** the campaign was cut short by an injected preemption; the
          journal holds everything measured so far and [resume] continues
          it *)
  fault_stats : Cluster.Faults.stats option;
      (** loss accounting when fault injection was active *)
}

val default_workers : unit -> int
(** The default evaluation parallelism: one worker domain per spare core
    ([Domain.recommended_domain_count () - 1], never negative). *)

type progress = {
  pg_records : int;  (** records committed so far, incl. a resumed prefix *)
  pg_hours : float;  (** simulated cluster hours consumed, incl. fault losses *)
  pg_best : float;  (** best passing speedup committed so far *)
}
(** What a [?checkpoint] hook sees: the campaign's durable progress at a
    moment when everything committed is already fsynced to the journal. *)

exception Paused
(** Raised by a caller's [?checkpoint] hook to suspend the campaign at
    the current durable record. The runner returns a campaign with
    [interrupted = true]; {!resume} later continues it bit-identically
    (exactly like an injected preemption, but caller-controlled). *)

type memo_hooks = {
  memo_find : signature:string -> (Search.Variant.measurement * string) option;
      (** pre-fault measurement for this signature, plus the donor
          campaign id, if some fleet campaign already evaluated it *)
  memo_publish : signature:string -> Search.Variant.measurement -> unit;
      (** called once per fresh evaluation with its pre-fault measurement *)
}
(** Fleet-wide evaluation memo hooks ([?memo] on the runners; the
    service's cross-campaign memo plugs in here, solo campaigns pass
    none). The contract: the memo is keyed by evaluation space — same
    model source and same {!Config.digest} — within which a pre-fault
    measurement is a pure function of the signature, identical whichever
    campaign computes it. A [memo_find] hit is committed as a normal
    record (journaled, budgeted, charged full simulated cluster-hours)
    with this campaign's own fault perturbation applied and a
    provenance annotation line in the journal, but costs no live
    evaluation — it shows up in {!Search.Trace.stats} as [shared]
    instead of [misses]. Preloaded (journal-replayed) records are never
    republished: their stored values are post-fault. *)

val run_delta_debug :
  ?config:Config.t ->
  ?workers:int ->
  ?shards:int ->
  ?pool:Search.Pool.t ->
  ?journal:string ->
  ?faults:Cluster.Faults.spec ->
  ?checkpoint:(progress -> unit) ->
  ?memo:memo_hooks ->
  Models.Registry.t ->
  campaign
(** The paper's search (Sec. III-B) on the model's search space, bounded
    by the model's variant budget (the simulated 12-hour limit).

    [workers] (default {!default_workers}; [0] = sequential) spreads each
    ddmin round's candidate evaluations over a {!Search.Pool} of domains
    — the laptop analogue of the paper's one-node-per-variant cluster
    fan-out. The search trajectory, [records] and the Table-II summary
    are bit-identical across worker counts; only wall clock changes
    ([simulated_hours] stays variant-count-based).

    [shards] switches the campaign to the {!Search.Shard} work-stealing
    scheduler: each round's candidates are block-partitioned over
    [shards] simulated node-shards of [workers] slots each (so
    [~shards:s ~workers:0] is the sequential trajectory), shards that
    drain early steal from their neighbours, and the deterministic
    simulated makespan lands in [sched]. Records, minimal sets, the
    summary and the cluster-hours books are bit-identical at every
    shards × workers point — sharding is an execution strategy, not part
    of the experiment, which is also why it never enters
    {!Config.digest} or the journal header.

    [journal] makes the campaign durable: every committed record is
    appended (write-ahead, fsynced) to [DIR/journal.jsonl] before the
    search proceeds, with periodic snapshots of the frontier state. The
    journal's record lines are byte-identical for every worker count. A
    killed campaign continues with {!resume}.

    [faults] injects deterministic seeded cluster faults
    ({!Cluster.Faults}): lost variants are accounted as [Error] records,
    a preemption boundary interrupts the campaign gracefully
    ([interrupted = true]) after the current record is durable. Fault
    bookkeeping and the preemption clock live in the journal's commit
    sink, so [faults] should be combined with [journal]; without it only
    the measurement perturbation applies.

    [pool] lends an externally owned {!Search.Pool} instead of creating
    one per campaign — the substrate a multiplexing service shares
    between jobs. It is used whenever the effective worker count is
    positive and is never shut down by the runner; the journal header
    still records [workers], so journals stay byte-identical to
    solo runs.

    [checkpoint] is called with the campaign's {!progress} after every
    fresh durable record (from the journal's commit sink, so it only
    fires on journaled campaigns), once before any fresh work is
    scheduled, and — under [shards] — between speculative batches. The
    hook may raise {!Paused} to suspend the campaign gracefully at that
    durable point. *)

val run_brute_force :
  ?config:Config.t ->
  ?journal:string ->
  ?faults:Cluster.Faults.spec ->
  ?checkpoint:(progress -> unit) ->
  ?memo:memo_hooks ->
  Models.Registry.t ->
  campaign
(** Exhaustive 2ⁿ exploration — the funarc walkthrough of Sec. II-B.
    [journal] and [faults] as in {!run_delta_debug}. *)

val run_random : ?config:Config.t -> samples:int -> Models.Registry.t -> campaign
(** Random-subset baseline for the ablation benchmark. *)

val flow_groups : prepared -> Transform.Assignment.atom list list
(** The search space partitioned by connected components of the
    interprocedural FP flow graph: atoms linked by parameter passing land
    in one group. Singleton groups for unconnected atoms. *)

val run_hierarchical :
  ?config:Config.t ->
  ?workers:int ->
  ?shards:int ->
  ?pool:Search.Pool.t ->
  ?journal:string ->
  ?faults:Cluster.Faults.spec ->
  ?checkpoint:(progress -> unit) ->
  ?memo:memo_hooks ->
  Models.Registry.t ->
  campaign
(** The community-structure search ({!Search.Hierarchical}) over the
    flow-graph groups — the clustering approach the paper's Sec. V points
    to for scaling FPPT. [workers], [shards], [pool], [journal],
    [faults], [checkpoint] as in {!run_delta_debug}. *)

exception Resume_mismatch of string
(** The offered model/configuration disagrees with the journal header. *)

val resume :
  ?config:Config.t ->
  ?workers:int ->
  ?shards:int ->
  ?pool:Search.Pool.t ->
  ?faults:Cluster.Faults.spec ->
  ?checkpoint:(progress -> unit) ->
  ?memo:memo_hooks ->
  ?model:Models.Registry.t ->
  journal:string ->
  unit ->
  campaign
(** Continue a journaled campaign from [journal:DIR]: load the journal
    (tolerating a torn final line from a crash mid-append), validate the
    header against the offered configuration (the journal's seed is
    adopted; the config digest and the model's atom count must agree),
    pre-seed the search trace's memo cache with every journaled record,
    and re-run the deterministic search. The journaled prefix is served
    from the cache — [trace_stats.misses] counts only post-resume fresh
    evaluations — and the finished campaign is record-for-record and
    summary-bit-identical to one that was never interrupted. The cluster
    accounting (and the fault layer's preemption clock) continues from
    the hours the journaled prefix consumed.

    [model] overrides the registry lookup of the header's model name —
    for campaigns over custom-built model instances (tests, scaled-down
    sources); the name must still match the header.

    Raises {!Resume_mismatch} on header disagreement,
    {!Persist.Journal.Corrupt} on a damaged journal. *)

val uniform32_measurement : prepared -> Search.Variant.measurement
(** The uniform 32-bit variant (the "supported single-precision build"
    MPAS-A is compared against). *)
