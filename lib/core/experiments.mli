(** The four tuning campaigns of the case study, plus the Sec.-V
    ablations, packaged for the benchmark harness and the CLI.

    Experiment index (see DESIGN.md §3):
    - E1/E2: funarc brute force → Figures 2 and 3;
    - E3/E4: Table I and Table II rows from the three hotspot campaigns;
    - E5/E6: Figures 5 and 6 per model;
    - E7: the whole-model-guided MPAS-A search → Figure 7;
    - E8: ablations — static variant filtering (Sec. V) and a no-SIMD
      machine (criterion 1). *)

type suite = {
  funarc : Tuner.campaign;
  mpas : Tuner.campaign;
  adcirc : Tuner.campaign;
  mom6 : Tuner.campaign;
  mpas_whole : Tuner.campaign;
  whole_model_joint : Tuner.campaign;
}

val run_suite : ?config:Config.t -> ?workers:int -> ?shards:int -> unit -> suite
(** Runs everything (minutes of CPU). The same [config] seeds every
    campaign, so a suite is reproducible. [workers] (default: one per
    spare core; [0] = sequential) parallelizes each delta-debug
    campaign's variant evaluations without changing any result — see
    {!Tuner.run_delta_debug}. [shards] runs the two whole-model
    campaigns on the {!Search.Shard} work-stealing scheduler, again
    without changing any result. *)

val funarc_campaign : ?config:Config.t -> unit -> Tuner.campaign
val hotspot_campaign : ?config:Config.t -> ?workers:int -> string -> Tuner.campaign
(** By model name ("mpas", "adcirc", "mom6"). *)

val whole_model_campaign :
  ?config:Config.t -> ?workers:int -> ?shards:int -> unit -> Tuner.campaign
(** MPAS-A guided by whole-model time (Sec. IV-C). *)

val joint_campaign :
  ?config:Config.t -> ?workers:int -> ?shards:int -> unit -> Tuner.campaign
(** The joint multi-hotspot campaign ({!Models.Registry.mpas_joint}):
    whole-model-guided search over every [atm_time_integration]
    procedure including the [atm_srk3] driver, so cross-procedure
    boundary casts are tuned rather than fixed. The scenario the shard
    scheduler targets. *)

type ablation = {
  label : string;
  baseline_campaign : Tuner.campaign;  (** the reference configuration *)
  treated_campaign : Tuner.campaign;  (** with the studied change applied *)
  narrative : string;
}

val ablation_static_filter : ?config:Config.t -> unit -> ablation
(** MPAS-A with and without the Sec.-V static pre-filter: how many
    dynamic evaluations the filter saves and what it costs in outcome. *)

val ablation_no_simd : ?config:Config.t -> unit -> ablation
(** MPAS-A on a machine without SIMD: criterion (1)'s contribution to
    reduced-precision speedup disappears. *)

val ablation_search : ?config:Config.t -> unit -> ablation
(** Delta debugging vs random sampling at an equal variant budget. *)

val ablation_hierarchical : ?config:Config.t -> unit -> ablation
(** Flat delta debugging vs the flow-graph-clustered hierarchical search
    on MOM6 (the largest search space): evaluations spent and outcome. *)

val render_ablation : ablation -> string
