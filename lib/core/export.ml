open Search

(* RFC 4180: quote a field if it holds a comma, a double quote or a line
   break; double embedded quotes. Plain fields pass through unquoted. *)
let csv_field s =
  let needs_quoting =
    String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s
  in
  if not needs_quoting then s
  else begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end

(* predicted_score / static_bound cells stay empty when the campaign ran
   without prediction (or the journal predates the columns) *)
let opt_cell = function
  | None -> ""
  | Some v -> Printf.sprintf "%.6g" v

let variants_csv_records ?(annot = fun (_ : Variant.record) -> (None, None)) records =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "index,pct_32bit,status,speedup,rel_error,hotspot_time,model_time,casting_share,\
     predicted_score,static_bound,signature\n";
  List.iter
    (fun (r : Variant.record) ->
      let m = r.Variant.meas in
      let score, bound = annot r in
      Buffer.add_string b
        (Printf.sprintf "%d,%.4f,%s,%.6g,%.6g,%.6g,%.6g,%.4f,%s,%s,%s\n" r.Variant.index
           (100.0 *. Variant.fraction_lowered r)
           (csv_field (Variant.status_to_string m.Variant.status))
           m.Variant.speedup m.Variant.rel_error m.Variant.hotspot_time m.Variant.model_time
           m.Variant.casting_share (opt_cell score) (opt_cell bound)
           (csv_field (Transform.Assignment.signature r.Variant.asg))))
    records;
  Buffer.contents b

let variants_csv (c : Tuner.campaign) =
  let annot =
    match c.Tuner.prepared.Tuner.scorer with
    | None -> fun _ -> (None, None)
    | Some sc ->
      fun (r : Variant.record) ->
        ( Some (Sensitivity.Score.score sc r.Variant.asg),
          Some (Sensitivity.Score.static_bound sc r.Variant.asg) )
  in
  variants_csv_records ~annot c.Tuner.records

(* One escaping for every JSON we emit — shared with the campaign
   journal's encoder, covering \r, \t and the rest of the C0 controls. *)
let json_escape = Persist.Json.escape_string

let jfloat v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

let summary_json (c : Tuner.campaign) =
  let p = c.Tuner.prepared in
  let m = p.Tuner.model in
  let s = c.Tuner.summary in
  let minimal =
    match c.Tuner.minimal with
    | None -> "null"
    | Some r ->
      Printf.sprintf
        {|{"high_atoms": [%s], "finished": %b, "evaluations": %d}|}
        (String.concat ", "
           (List.map
              (fun a -> "\"" ^ json_escape (Transform.Assignment.atom_id a) ^ "\"")
              r.Search.Delta_debug.high_set))
        r.Search.Delta_debug.finished r.Search.Delta_debug.evaluations
  in
  Printf.sprintf
    {|{
  "model": "%s",
  "target_module": "%s",
  "atoms": %d,
  "threshold": %s,
  "eq1_n": %d,
  "baseline_cost": %s,
  "baseline_hotspot": %s,
  "variants": %d,
  "pass_pct": %s,
  "fail_pct": %s,
  "timeout_pct": %s,
  "error_pct": %s,
  "best_speedup": %s,
  "simulated_hours": %s,
  "trace": {"hits": %d, "misses": %d, "shared": %d, "live": %d, "appends": %d, "preloaded": %d, "interrupted": %b},
  "backend": {"compiled_procs": %d, "compile_hits": %d, "reuse_hits": %d, "reuse_misses": %d},
  "minimal": %s
}
|}
    (json_escape m.Models.Registry.name)
    (json_escape m.Models.Registry.target_module)
    (List.length p.Tuner.atoms) (jfloat p.Tuner.threshold) p.Tuner.eq1_n
    (jfloat p.Tuner.baseline_cost) (jfloat p.Tuner.baseline_hotspot) s.Variant.total
    (jfloat s.Variant.pass_pct) (jfloat s.Variant.fail_pct) (jfloat s.Variant.timeout_pct)
    (jfloat s.Variant.error_pct) (jfloat s.Variant.best_speedup) (jfloat c.Tuner.simulated_hours)
    c.Tuner.trace_stats.Trace.hits c.Tuner.trace_stats.Trace.misses
    c.Tuner.trace_stats.Trace.shared
    c.Tuner.trace_stats.Trace.live c.Tuner.trace_stats.Trace.appends
    c.Tuner.preloaded c.Tuner.interrupted
    c.Tuner.backend.Tuner.compiled_procs c.Tuner.backend.Tuner.compile_hits
    c.Tuner.backend.Tuner.reuse_hits c.Tuner.backend.Tuner.reuse_misses
    minimal

let sched_json (s : Tuner.sched_stats) =
  Printf.sprintf
    "{\"shards\": %d, \"workers\": %d, \"slots\": %d, \"sim_hours\": %s, \"steals\": %d, \
     \"rounds\": %d, \"batched\": %d, \"serial\": %d}"
    s.Tuner.sched_shards s.Tuner.sched_workers s.Tuner.sched_slots
    (jfloat s.Tuner.sched_sim_hours) s.Tuner.sched_steals s.Tuner.sched_rounds
    s.Tuner.sched_batched s.Tuner.sched_serial

type predict_point = {
  pr_campaign : string;
  pr_mode : string;
  pr_evals_to_minimal : int;
  pr_dynamic_evals : int;
  pr_pruned : int;
  pr_sim_hours : float;
  pr_sim_hours_saved : float;
  pr_minimal_identical : bool;
}

let predict_point_json p =
  Printf.sprintf
    "    {\"campaign\": \"%s\", \"mode\": \"%s\", \"evals_to_minimal\": %d, \
     \"dynamic_evals\": %d, \"pruned\": %d, \"sim_hours\": %s, \"sim_hours_saved\": %s, \
     \"minimal_identical\": %b}"
    (json_escape p.pr_campaign) (json_escape p.pr_mode) p.pr_evals_to_minimal
    p.pr_dynamic_evals p.pr_pruned (jfloat p.pr_sim_hours) (jfloat p.pr_sim_hours_saved)
    p.pr_minimal_identical

type fleet_point = {
  fl_jobs : int;
  fl_solo_misses : int;
  fl_fleet_misses : int;
  fl_fleet_shared : int;
  fl_saved_pct : float;
  fl_identical : bool;
}

let fleet_point_json f =
  Printf.sprintf
    "    {\"jobs\": %d, \"solo_misses\": %d, \"fleet_misses\": %d, \"fleet_shared\": %d, \
     \"saved_pct\": %s, \"identical\": %b}"
    f.fl_jobs f.fl_solo_misses f.fl_fleet_misses f.fl_fleet_shared (jfloat f.fl_saved_pct)
    f.fl_identical

let bench_json ?scaling ?predict ?fleet ~workers entries =
  let entry (name, wall_seconds, c) =
    let summary = String.trim (summary_json c) in
    Printf.sprintf
      "    {\"name\": \"%s\", \"wall_seconds\": %s, \"evaluations\": %d, \"eval_ms_mean\": %s, \
       \"eval_ms_max\": %s, \"summary\": %s}"
      (json_escape name) (jfloat wall_seconds)
      (List.length c.Tuner.records)
      (jfloat c.Tuner.eval_ms_mean) (jfloat c.Tuner.eval_ms_max)
      summary
  in
  let scaling_section =
    match scaling with
    | None | Some [] -> ""
    | Some points ->
      Printf.sprintf ",\n  \"scaling\": [\n%s\n  ]"
        (String.concat ",\n"
           (List.map (fun s -> "    " ^ sched_json s) points))
  in
  let predict_section =
    match predict with
    | None | Some [] -> ""
    | Some points ->
      Printf.sprintf ",\n  \"predict\": [\n%s\n  ]"
        (String.concat ",\n" (List.map predict_point_json points))
  in
  let fleet_section =
    match fleet with
    | None | Some [] -> ""
    | Some points ->
      Printf.sprintf ",\n  \"fleet\": [\n%s\n  ]"
        (String.concat ",\n" (List.map fleet_point_json points))
  in
  Printf.sprintf "{\n  \"workers\": %d,\n  \"campaigns\": [\n%s\n  ]%s%s%s\n}\n" workers
    (String.concat ",\n" (List.map entry entries))
    scaling_section predict_section fleet_section

let write_file ~path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)
