(** Campaign data export — the artifact's machine-readable outputs.

    The paper's artifact ships raw per-variant data from which its plots
    are rebuilt; these renderers produce the same data as CSV (one row per
    explored variant) and a compact JSON summary. *)

val csv_field : string -> string
(** RFC-4180 field encoding: quoted (with embedded quotes doubled) when
    the value holds a comma, quote or line break, unchanged otherwise. *)

val variants_csv : Tuner.campaign -> string
(** Header plus one row per variant: index, %32-bit, status, Eq.-1
    speedup, relative error, hotspot/model times, casting share, the
    predicted score and sound static error bound (empty unless the
    campaign ran with [--predict]), and the precision signature (one
    character per atom, '4' or '8'). The status and signature fields go
    through {!csv_field}. *)

val variants_csv_records :
  ?annot:(Search.Variant.record -> float option * float option) ->
  Search.Variant.record list ->
  string
(** {!variants_csv} over a bare record list — what [prose campaign
    replay] renders straight from a journal. [annot] supplies the
    (predicted_score, static_bound) cells per record (e.g. from the
    journal's own score fields); both default to empty, as for journals
    written before the columns existed. *)

val summary_json : Tuner.campaign -> string
(** Model, search-space size, threshold, Table-II row, 1-minimal variant,
    simulated cluster hours, memo-cache traffic ({!Search.Trace.stats}
    under ["trace"], with the resume bookkeeping), as a JSON object. *)

(** One campaign × predict-mode measurement of the bench predictive-search
    comparison: dynamic evaluations spent reaching the minimal set, total
    dynamic evaluations, statically pruned records, simulated cluster
    hours (and the saving vs the [off] mode of the same campaign), and
    whether the minimal set is bit-identical to the [off] run's. *)
type predict_point = {
  pr_campaign : string;
  pr_mode : string;  (** ["off"], ["rank"] or ["prune"] *)
  pr_evals_to_minimal : int;
  pr_dynamic_evals : int;
  pr_pruned : int;
  pr_sim_hours : float;
  pr_sim_hours_saved : float;
  pr_minimal_identical : bool;
}

(** One fleet-dedup measurement ([bench --fleet]): K identical-model
    service campaigns over the shared evaluation memo vs K solo runs —
    fleet-wide fresh evaluations ([trace.misses]) on both sides, the
    memo-served record count, the saving percentage, and whether every
    per-job journal (modulo provenance lines) and trace-stripped summary
    was byte-identical to its solo counterpart. *)
type fleet_point = {
  fl_jobs : int;
  fl_solo_misses : int;
  fl_fleet_misses : int;
  fl_fleet_shared : int;
  fl_saved_pct : float;
  fl_identical : bool;
}

val bench_json :
  ?scaling:Tuner.sched_stats list ->
  ?predict:predict_point list ->
  ?fleet:fleet_point list ->
  workers:int ->
  (string * float * Tuner.campaign) list ->
  string
(** The bench harness's perf-trajectory record ([BENCH_*.json]): worker
    count plus, per campaign, its label, measured wall-clock seconds,
    number of dynamic evaluations, the mean and max wall-clock
    milliseconds per evaluation, and the full {!summary_json} object.
    [scaling] appends the shard scheduler's workers x shards curve
    ([bench --scaling]): one object per grid point with the simulated
    makespan and steal/batch accounting. [fleet] appends the
    cross-campaign dedup measurements ([bench --fleet]). *)

val write_file : path:string -> string -> unit
