(** Campaign data export — the artifact's machine-readable outputs.

    The paper's artifact ships raw per-variant data from which its plots
    are rebuilt; these renderers produce the same data as CSV (one row per
    explored variant) and a compact JSON summary. *)

val variants_csv : Tuner.campaign -> string
(** Header plus one row per variant: index, %32-bit, status, Eq.-1
    speedup, relative error, hotspot/model times, casting share, and the
    precision signature (one character per atom, '4' or '8'). *)

val summary_json : Tuner.campaign -> string
(** Model, search-space size, threshold, Table-II row, 1-minimal variant,
    simulated cluster hours, as a JSON object. *)

val bench_json : workers:int -> (string * float * Tuner.campaign) list -> string
(** The bench harness's perf-trajectory record ([BENCH_*.json]): worker
    count plus, per campaign, its label, measured wall-clock seconds,
    number of dynamic evaluations, the mean and max wall-clock
    milliseconds per evaluation, and the full {!summary_json} object. *)

val write_file : path:string -> string -> unit
