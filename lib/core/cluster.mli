(** Simulated batch execution on the paper's cluster setup.

    The paper parallelizes transformation, compilation and execution of
    variants over 20 dedicated Derecho nodes under a 12-hour job limit
    (Sec. IV-A). The cost model's abstract time units are mapped to wall
    seconds through the paper's own baseline wall times (MPAS-A ≈ 90 s,
    ADCIRC ≈ 200 s, MOM6 ≈ 60 s), plus a fixed per-variant transform +
    compile overhead; this bookkeeping reproduces the resource accounting
    (and MOM6's failure to finish inside the job limit). *)

type t = {
  nodes : int;  (** 20 in the paper *)
  job_hours : float;  (** 12 in the paper *)
  per_variant_overhead_s : float;  (** transform + compile + queue, per variant *)
  baseline_wall_s : float;  (** wall seconds of one baseline model run *)
}

val for_model : Models.Registry.t -> t
(** Paper-faithful constants for each model (funarc gets a 1-node,
    laptop-scale setup). *)

val variant_seconds : t -> baseline_cost:float -> variant_cost:float -> float
(** Wall seconds to transform, compile and run one variant whose modeled
    cost is [variant_cost]. *)

val campaign_hours : t -> baseline_cost:float -> variant_costs:float list -> float
(** Simulated wall-clock hours for a whole search, with variants spread
    across the nodes. *)

val over_budget : t -> float -> bool
(** Strictly above the job limit; exactly at the boundary is within
    budget. *)

(** Deterministic fault injection for campaign runs (Sec. III-D brought to
    production reality): seeded node failures, spurious per-variant
    transient errors with a capped retry budget, and job preemption at a
    simulated wall-clock boundary. Every decision is a pure function of
    [(fault_seed, fault kind, variant signature, attempt)], so a campaign
    replayed at the same seed — at any worker count, interrupted or not —
    meets exactly the same faults. The layer exists to exercise the
    journal's crash path on purpose and to account losses gracefully
    instead of aborting the search. *)
module Faults : sig
  type spec = {
    fault_seed : int;
    transient_prob : float;  (** per-attempt chance of a spurious run failure *)
    node_failure_prob : float;  (** per-attempt chance the node dies mid-variant *)
    max_retries : int;  (** extra attempts before a variant is declared lost *)
    preempt_at_hours : float option;
        (** simulated job boundary (the paper's 12 h); [None] = never *)
  }

  val none : spec
  (** All probabilities zero, no preemption, 2 retries. *)

  val active : spec -> bool
  (** Whether the spec can ever inject anything. *)

  type stats = {
    retried_attempts : int;  (** failed attempts that triggered a retry *)
    transient_losses : int;  (** variants lost to persistent transient errors *)
    node_losses : int;  (** variants lost to nodes that kept dying *)
    node_failures : int;  (** individual node deaths *)
    lost_node_seconds : float;  (** node-seconds burned by failed attempts *)
    preemptions : int;
  }

  val zero_stats : stats

  type state

  exception Preempted of { at_hours : float; boundary : float }

  val create : spec -> state
  val spec : state -> spec
  val stats : state -> stats

  val perturb :
    spec -> signature:string -> Search.Variant.measurement -> Search.Variant.measurement
  (** What the search observes for this variant once faults are applied:
      unchanged when the retry budget absorbs every injected failure,
      otherwise an [Error] measurement with a ["fault: ..."] detail. Pure
      and deterministic — safe for speculative pool evaluation. *)

  val lost_seconds :
    spec ->
    t ->
    baseline_cost:float ->
    signature:string ->
    model_time:float ->
    float
  (** Pure form of the loss computation behind {!note_commit}: the
      node-seconds this variant's failed attempts burn. Resume uses it to
      re-derive the hours a journaled prefix already consumed. *)

  val note_commit :
    state ->
    t ->
    baseline_cost:float ->
    signature:string ->
    model_time:float ->
    float
  (** Commit-time loss accounting for one recorded variant: re-derives the
      variant's failed attempts deterministically, updates {!stats}, and
      returns the node-seconds lost (each failed attempt burns one
      {!variant_seconds} worth of wall clock). Called from the journal
      sink so speculative evaluations never skew the books. *)

  val check_preempt : state -> hours:float -> unit
  (** Raises {!Preempted} (after counting it) once the campaign's
      simulated hours reach the configured boundary. *)
end
