(** Static variant-performance prediction.

    The paper closes its scalability discussion with: "Innovations in
    search algorithm design which avoid evaluating bad variants is
    needed, such as recent work [Wang & Rubio-González, ICSE'24] that
    uses ML to predict the performance and accuracy of mixed-precision
    programs" (Sec. V). This module implements a lightweight instance:
    an ordinary-least-squares model over {e statically computable}
    features of a variant —

    - fraction of atoms at 32 bits,
    - mismatching flow-graph edges (scalar and array-weighted),
    - loops predicted to vectorize, and static conversion-site count —

    trained on the dynamically evaluated variants of a campaign and used
    to predict Eq.-1 speedups of unseen variants before running them. *)

type t

val feature_names : string list

val features : Tuner.prepared -> Transform.Assignment.t -> float array
(** Static features of a variant: no dynamic evaluation involved (the
    assignment is rewritten and re-analyzed, mirroring what a compiler
    front end sees before execution). *)

val train : Tuner.prepared -> Search.Variant.record list -> t option
(** Fit on the records that produced a measurable speedup (pass or fail);
    [None] when there are too few or the system is degenerate. *)

val predict : t -> Tuner.prepared -> Transform.Assignment.t -> float
(** Predicted Eq.-1 speedup. *)

val r_squared : t -> Tuner.prepared -> Search.Variant.record list -> float
(** Fit quality on a (possibly held-out) record set. *)

val holdout_report : Tuner.prepared -> Search.Variant.record list -> (float * float * int) option
(** Split the records 60/40 in committed (variant-index) order, train on
    the first part: [(train_r2, test_r2, test_count)]. [None] when
    training fails. The benchmark prints this as the E8 prediction
    ablation. The split key is the variant index, not arrival order, so
    sharded and multi-worker runs report identical numbers. *)

(** Fusion of the static error-amplification scorer with the dynamic OLS
    speedup model: predicted pass-probability × predicted speedup. Built
    from a campaign's prepared scorer ([None] when the campaign ran with
    prediction off); used for reporting and the benchmark — the search
    itself ranks with the purely static {!Sensitivity.Score.score} so
    trajectories never depend on scheduling. *)
module Static : sig
  type t

  val create : Tuner.prepared -> Search.Variant.record list -> t option
  (** [None] when the prepared campaign has no scorer. The OLS refinement
      is fitted on the records sorted by variant index (falling back to
      the static payoff proxy when the fit is degenerate). *)

  val score : t -> Tuner.prepared -> Transform.Assignment.t -> float
  (** Pass-probability × predicted speedup (OLS-refined when available). *)

  val bound : t -> Transform.Assignment.t -> float
  (** The sound static error bound of {!Sensitivity.Score.static_bound}. *)
end
