(** Precision assignments: the points of the mixed-precision design space.

    A search {e atom} is a floating-point variable declaration
    (Sec. III-A), identified by its scope-qualified name. An assignment
    maps every atom of the search space to a precision; atoms outside the
    search space keep their declared precision. *)

type atom = {
  a_scope : Fortran.Symtab.scope;
  a_name : string;
  a_declared : Fortran.Ast.real_kind;  (** kind in the original program *)
  a_is_array : bool;
}

val atom_id : atom -> string
(** Stable printable identity, e.g. ["funarc/s1"] or ["m::xs"]. *)

val pp_atom : Format.formatter -> atom -> unit

val atoms_of_module :
  ?exclude:string list -> Fortran.Symtab.t -> string -> atom list
(** The search space of Sec. III-A: every non-parameter FP variable
    declared in the module (module level, and every contained procedure's
    locals and dummies). [exclude] removes variables by name (the paper
    excludes [funarc]'s [result]). *)

val atoms_of_target :
  ?exclude:string list ->
  Fortran.Symtab.t ->
  module_:string ->
  procs:string list option ->
  atom list
(** Like {!atoms_of_module}, but when [procs] is [Some l] only variables
    of the listed procedures (plus module-level variables) are atoms —
    MPAS-A targets the work routines of [atm_time_integration], not its
    [atm_srk3] driver. [None] targets the whole module. *)

type t

val uniform : atom list -> Fortran.Ast.real_kind -> t
(** Every atom at the given kind. *)

val original : atom list -> t
(** Every atom at its declared kind (the identity assignment). *)

val of_lowered : atom list -> lowered:atom list -> t
(** Atoms in [lowered] at K4, the rest at their declared kind. *)

val kind_of : t -> atom -> Fortran.Ast.real_kind
val atoms : t -> atom list
val lowered : t -> atom list
(** Atoms assigned K4 whose declared kind was K8. *)

val set : t -> atom -> Fortran.Ast.real_kind -> t
val lookup : t -> scope:Fortran.Symtab.scope -> string -> Fortran.Ast.real_kind option

val fraction_lowered : t -> float
(** Fraction of atoms at reduced precision — the x-axis clustering
    quantity of Figs. 5 and 7 ("% 32-bit"). *)

val count_at : t -> Fortran.Ast.real_kind -> int
val equal : t -> t -> bool
val signature : t -> string
(** Canonical string over the atom kinds; equal assignments have equal
    signatures (used for caching and for Fig. 6's "unique procedure
    variants"). *)

val of_signature : atom list -> string -> t
(** Inverse of {!signature} over the same atom list (the campaign
    journal's content address back to an assignment). Raises
    [Invalid_argument] on a length mismatch or a character other than
    ['4']/['8']. [signature (of_signature atoms s) = s], and
    [of_signature atoms (signature a)] equals [a] whenever [a] ranges
    over [atoms]. *)

val restrict_signature : t -> proc:string -> string
(** Signature over only the atoms local to the given procedure. *)
