open Fortran

type atom = {
  a_scope : Symtab.scope;
  a_name : string;
  a_declared : Ast.real_kind;
  a_is_array : bool;
}

let atom_id a =
  match a.a_scope with
  | Symtab.Proc_scope p -> p ^ "/" ^ a.a_name
  | Symtab.Unit_scope u -> u ^ "::" ^ a.a_name

let pp_atom ppf a = Format.pp_print_string ppf (atom_id a)

let atoms_of_module ?(exclude = []) st mod_name =
  List.filter_map
    (fun (v : Symtab.var_info) ->
      match v.v_base with
      | Ast.Treal k when not (List.mem v.v_name exclude) ->
        Some { a_scope = v.v_scope; a_name = v.v_name; a_declared = k; a_is_array = v.v_dims <> [] }
      | Ast.Treal _ | Ast.Tinteger | Ast.Tlogical -> None)
    (Symtab.fp_vars_of_module st mod_name)

let atoms_of_target ?(exclude = []) st ~module_ ~procs =
  let all = atoms_of_module ~exclude st module_ in
  match procs with
  | None -> all
  | Some keep ->
    List.filter
      (fun a ->
        match a.a_scope with
        | Symtab.Unit_scope _ -> true
        | Symtab.Proc_scope p -> List.mem p keep)
      all

module M = Map.Make (struct
  type t = Symtab.scope * string

  let compare = compare
end)

type t = { kinds : Ast.real_kind M.t; atom_list : atom list }

let key a = (a.a_scope, a.a_name)

let uniform atom_list k =
  { kinds = List.fold_left (fun m a -> M.add (key a) k m) M.empty atom_list; atom_list }

let original atom_list =
  { kinds = List.fold_left (fun m a -> M.add (key a) a.a_declared m) M.empty atom_list; atom_list }

let of_lowered atom_list ~lowered =
  let low = List.map key lowered in
  {
    kinds =
      List.fold_left
        (fun m a -> M.add (key a) (if List.mem (key a) low then Ast.K4 else a.a_declared) m)
        M.empty atom_list;
    atom_list;
  }

let kind_of t a = match M.find_opt (key a) t.kinds with Some k -> k | None -> a.a_declared
let atoms t = t.atom_list
let lowered t = List.filter (fun a -> a.a_declared = Ast.K8 && kind_of t a = Ast.K4) t.atom_list
let set t a k = { t with kinds = M.add (key a) k t.kinds }
let lookup t ~scope name = M.find_opt (scope, name) t.kinds

let fraction_lowered t =
  let n = List.length t.atom_list in
  if n = 0 then 0.0
  else float_of_int (List.length (List.filter (fun a -> kind_of t a = Ast.K4) t.atom_list)) /. float_of_int n

let count_at t k = List.length (List.filter (fun a -> kind_of t a = k) t.atom_list)

let signature t =
  String.concat ""
    (List.map (fun a -> match kind_of t a with Ast.K4 -> "4" | Ast.K8 -> "8") t.atom_list)

let of_signature atom_list s =
  if String.length s <> List.length atom_list then
    invalid_arg
      (Printf.sprintf "Assignment.of_signature: %d-char signature over %d atoms"
         (String.length s) (List.length atom_list));
  let kinds, _ =
    List.fold_left
      (fun (m, i) a ->
        let k =
          match s.[i] with
          | '4' -> Ast.K4
          | '8' -> Ast.K8
          | c -> invalid_arg (Printf.sprintf "Assignment.of_signature: bad kind char %C" c)
        in
        (M.add (key a) k m, i + 1))
      (M.empty, 0) atom_list
  in
  { kinds; atom_list }

let equal a b =
  List.length a.atom_list = List.length b.atom_list && signature a = signature b

let restrict_signature t ~proc =
  String.concat ""
    (List.filter_map
       (fun a ->
         match a.a_scope with
         | Symtab.Proc_scope p when p = proc ->
           Some (match kind_of t a with Ast.K4 -> "4" | Ast.K8 -> "8")
         | Symtab.Proc_scope _ | Symtab.Unit_scope _ -> None)
       t.atom_list)
