(* Fusing the mirror analysis into a search-steering score.

   [create] runs {!Absint} once on the original program and distils, per
   demotable atom:
   - [rel_bound]: the sound relative-error bound a singleton demotion can
     inflict on the model's checked output series, combined across samples
     with the same l2 rule {!Metrics.Error.series_rel_error_l2} applies to
     dynamic measurements — infinite when the atom is poisoned;
   - [amp]: the same accumulation kept finite through poisoning, usable
     only for ranking;
   - [weight]: a static execution-frequency proxy for the speedup a
     demotion buys (def-use occurrences weighted by mean-trip-count ^
     loop-depth, trip counts folded by {!Analysis.Static_cost.trip_count}).

   Whole-assignment bounds are first-order: the bound of a variant is the
   sum of its singleton bounds (DESIGN.md §13 gives the argument and its
   limits; the prune margin absorbs the second-order slack). *)

open Fortran
module A = Transform.Assignment

type t = {
  rel_bound : float array;
  amp : float array;
  weight : float array;
  total_weight : float;
  threshold : float;
  margin : float;
  index_of : (Symtab.scope * string, int) Hashtbl.t;
}

let bits = Int64.bits_of_float

(* integer parameters folded through the symtab, so trip counts like
   [do i = 1, n] with [integer, parameter :: n = 100] resolve *)
let param_env st name =
  match Symtab.lookup_var st ~in_proc:None name with
  | Some { Symtab.v_parameter = true; v_base = Ast.Tinteger; v_init = Some e; _ } ->
    Analysis.Static_cost.const_int e
  | Some _ | None -> None

(* mean static trip count over the program's counted loops; loops whose
   bounds do not fold are left out, and a program with no foldable loop
   falls back to the Static_cost loop_weight proxy scaled down (10) *)
let mean_trip st =
  let env = param_env st in
  let counts = ref [] in
  let rec walk_stmt (s : Ast.stmt) =
    (match Analysis.Static_cost.trip_count ~env s.Ast.node with
    | Some n -> counts := float_of_int n :: !counts
    | None -> ());
    match s.Ast.node with
    | Ast.Do { body; _ } -> List.iter walk_stmt body
    | Ast.Do_while { body; _ } -> List.iter walk_stmt body
    | Ast.If (arms, els) ->
      List.iter (fun (_, b) -> List.iter walk_stmt b) arms;
      List.iter walk_stmt els
    | Ast.Select { arms; default; _ } ->
      List.iter (fun (_, b) -> List.iter walk_stmt b) arms;
      List.iter walk_stmt default
    | Ast.Assign _ | Ast.Call _ | Ast.Print_stmt _ | Ast.Exit_stmt | Ast.Cycle_stmt
    | Ast.Return_stmt | Ast.Stop_stmt _ -> ()
  in
  List.iter
    (fun u ->
      (match u with
      | Ast.Main { main_body; _ } -> List.iter walk_stmt main_body
      | Ast.Module _ -> ());
      List.iter (fun p -> List.iter walk_stmt p.Ast.proc_body) (Ast.procs_of_unit u))
    (Symtab.program st);
  match !counts with
  | [] -> 10.0
  | cs -> Float.max 1.0 (List.fold_left ( +. ) 0.0 cs /. float_of_int (List.length cs))

let create ~st ~atoms ~metric_key ~baseline_metric ~threshold ~margin =
  match Absint.analyze ~atoms st with
  | None -> None
  | Some r ->
    if r.Absint.r_status <> Absint.Finished then None
    else begin
      let series =
        List.filter (fun s -> s.Absint.s_key = metric_key) r.Absint.r_samples
      in
      let concrete = List.map (fun s -> s.Absint.s_value) series in
      (* fidelity gate: the mirror must reproduce the interpreter's
         baseline series bit-for-bit, or every bound is untrustworthy *)
      let faithful =
        List.length concrete = List.length baseline_metric
        && List.for_all2 (fun a b -> bits a = bits b) concrete baseline_metric
      in
      if not faithful then None
      else begin
        let n = Array.length r.Absint.r_poisoned in
        (* per-atom l2 relative error over the series, mirroring
           Metrics.Error.series_rel_error_l2's per-sample rule *)
        let amp = Array.make n 0.0 in
        List.iter
          (fun (s : Absint.sample) ->
            Absint.IMap.iter
              (fun a e ->
                if a >= 0 && a < n then begin
                  let b = Float.abs s.Absint.s_value in
                  let rel = if b = 0.0 then e else e /. b in
                  (* overflow-proof l2 combine: saturated entries sit near
                     max_float, and squaring them would collapse every
                     poisoned atom's amp to the same [infinity] — clamp and
                     hypot keep the pre-saturation magnitudes ordered, which
                     is all the ranking needs *)
                  let rel = Float.min rel 1e300 in
                  amp.(a) <- Float.hypot amp.(a) rel
                end)
              s.Absint.s_err)
          series;
        let rel_bound =
          Array.init n (fun a -> if r.Absint.r_poisoned.(a) then infinity else amp.(a))
        in
        let index_of = Absint.atom_indices atoms in
        let trip = mean_trip st in
        let defuse = Analysis.Defuse.analyze st in
        let weight = Array.make n 1.0 in
        Hashtbl.iter
          (fun (scope, name) a ->
            match Analysis.Defuse.for_var defuse ~scope name with
            | Some s ->
              let occ acc (o : Analysis.Defuse.occurrence) =
                acc +. (trip ** float_of_int o.Analysis.Defuse.o_loop_depth)
              in
              weight.(a) <-
                List.fold_left occ (List.fold_left occ 1.0 s.Analysis.Defuse.defs)
                  s.Analysis.Defuse.uses
            | None -> ())
          index_of;
        let total_weight = Float.max 1.0 (Array.fold_left ( +. ) 0.0 weight) in
        Some { rel_bound; amp; weight; total_weight; threshold; margin; index_of }
      end
    end

let indices t asg =
  List.filter_map
    (fun (a : A.atom) -> Hashtbl.find_opt t.index_of (a.A.a_scope, a.A.a_name))
    (A.lowered asg)

(* first-order whole-assignment bound: sum of singleton bounds *)
let static_bound t asg =
  List.fold_left (fun acc i -> acc +. t.rel_bound.(i)) 0.0 (indices t asg)

let pass_probability t asg =
  let b =
    List.fold_left
      (fun acc i ->
        acc +. if Float.is_finite t.rel_bound.(i) then t.rel_bound.(i) else t.amp.(i))
      0.0 (indices t asg)
  in
  if Float.is_finite t.threshold then t.threshold /. (t.threshold +. b) else 1.0 /. (1.0 +. b)

(* static speedup payoff: 1 + the lowered share of the def-use execution
   weight, so an empty assignment scores 1 and lowering everything 2 *)
let payoff t asg =
  let lowered_weight =
    List.fold_left (fun acc i -> acc +. t.weight.(i)) 0.0 (indices t asg)
  in
  1.0 +. (lowered_weight /. t.total_weight)

let score t asg = pass_probability t asg *. payoff t asg

(* prune only on a FINITE bound provably past the (margin-scaled)
   threshold; an infinite bound means "unknown", never "hopeless" *)
let prune t asg =
  Float.is_finite t.threshold
  &&
  let b = static_bound t asg in
  Float.is_finite b && b > t.margin *. t.threshold

let atom_bound t (a : A.atom) =
  Option.map (fun i -> t.rel_bound.(i)) (Hashtbl.find_opt t.index_of (a.A.a_scope, a.A.a_name))
