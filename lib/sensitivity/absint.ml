(* Forward error-amplification analysis: a mirror of {!Runtime.Interp}.

   One abstract pass executes the ORIGINAL (all-64-bit) program with the
   interpreter's exact concrete semantics — same values, same traps, same
   control flow — and augments every real value with a sparse per-atom map
   of absolute-error bounds: [err a] bounds |x_a - x| where x_a is the
   value this expression would take in the program variant that demotes
   precisely atom [a] to 32-bit (declarations rewritten, boundary wrappers
   inserted by [Transform]).  All singleton-demotion bounds are computed
   simultaneously in a single run.

   The error algebra (DESIGN.md §13):
   - reading a binding owned by atom [a] marks the value kind-tainted by
     [a] (in run-a its declared kind is 32-bit) and charges one f32
     rounding to [err a] — this uniformly covers both direct demotion
     (values stored rounded) and the wrapper copy-in/copy-out placements;
   - every real operation applies the interval propagation rule of the
     operator, then a rounding update err <- err*(1+2e) + 2e|v| at the
     baseline kind, plus an extra f32 rounding for kind-tainted atoms
     (their run may compute the operation in 32-bit);
   - integers, logicals and control flow never carry error: wherever a
     run-a value could round, compare, or convert differently than the
     baseline (interval crosses the decision boundary), atom [a] is
     POISONED — its sound bound becomes infinite, while the finite err
     accumulation continues as a ranking heuristic.

   Costs, timers, vectorization modes and the cost budget are not
   mirrored: they affect when a variant times out, never which values it
   computes, and a timed-out variant is a failed variant anyway. *)

open Fortran
module Value = Runtime.Value
module Fp32 = Runtime.Fp32
module IMap = Map.Make (Int)
module ISet = Set.Make (Int)

type status = Finished | Stopped of string | Runtime_error of string

type sample = { s_key : string; s_value : float; s_err : float IMap.t }

type result = {
  r_status : status;
  r_samples : sample list;  (** the mirrored [print 'key', ...] records, in order *)
  r_poisoned : bool array;  (** per atom index: sound bound is infinite *)
  r_steps : int;
}

exception Step_limit

(* control-flow and failure signals, mirroring Interp's *)
exception Return_signal
exception Exit_signal
exception Cycle_signal
exception Stop_signal of string
exception Trap of string

let trap fmt = Format.kasprintf (fun m -> raise (Trap m)) fmt

(* one f32 ulp at 1.0 (the interpreter's epsilon(kind=4)), doubled in the
   rounding update so double roundings and directed modes are absorbed *)
let eps32 = 1.1920928955078125e-07
let eps64 = epsilon_float

(* smallest positive subnormal at each kind: the relative model
   [err <= 2 eps |v|] is vacuous once |v| sinks under the normal range —
   rounding tiny(kind=8) to f32 flushes it to zero, an absolute error of
   ~2.2e-308 that no multiple of eps32*|v| covers.  An absolute floor of
   one subnormal ulp restores the bound (for normal |v| the relative term
   already dominates it). *)
let sub32 = 0x1p-149
let sub64 = 0x1p-1074

(* ------------------------------------------------------------------ *)
(* Abstract values                                                     *)

type av = {
  c : Value.v;  (* the concrete (baseline) value, bit-exact vs Interp *)
  err : float IMap.t;  (* per-atom absolute-error bound *)
  kt : ISet.t;  (* atoms whose demotion may change this value's kind *)
}

let pure c = { c; err = IMap.empty; kt = ISet.empty }

type cell =
  | Scalar of av ref  (* kt is never stored: it is a property of the binding *)
  | Real_array of {
      kind : Ast.real_kind;
      data : float array;
      errs : float IMap.t array;
      dims : int array;
    }
  | Int_array of { data : int array; dims : int array }
  | Log_array of { data : bool array; dims : int array }

type frame = { proc : string option; vars : (string, cell) Hashtbl.t }

type ctx = {
  st : Symtab.t;
  atom_of : Symtab.scope * string -> int option;
  callee_touches : string -> string * string -> bool;
      (* [callee_touches p (u, x)] : can procedure [p] (transitively)
         read or write module variable [u::x] by name? Demoting either
         end of a by-reference binding of [u::x] inserts a boundary
         wrapper, and if the callee also reaches the variable by name the
         wrapper BREAKS the baseline aliasing — an effect no interval
         bounds, so such atoms are poisoned at the call site. *)
  poisoned : bool array;
  mutable steps : int;
  max_steps : int;
  globals : (string, cell) Hashtbl.t;
  params : (string, av) Hashtbl.t;
  mutable samples : sample list;  (* reversed *)
  mutable depth : int;
}

let poison ctx a = ctx.poisoned.(a) <- true

let step ctx =
  ctx.steps <- ctx.steps + 1;
  if ctx.steps > ctx.max_steps then raise Step_limit

(* ------------------------------------------------------------------ *)
(* Value helpers (mirroring Interp's, plus interval checks)            *)

let as_float = function
  | Value.Vreal (x, _) -> x
  | Value.Vint i -> float_of_int i
  | Value.Vlog _ | Value.Vstr _ -> trap "numeric value expected"

let as_bool = function
  | Value.Vlog b -> b
  | Value.Vint _ | Value.Vreal _ | Value.Vstr _ -> trap "logical value expected"

let value_kind = function
  | Value.Vreal (_, k) -> Some k
  | Value.Vint _ | Value.Vlog _ | Value.Vstr _ -> None

let is_real_literal = function Ast.Real_lit _ -> true | _ -> false

let promote_kind a b =
  match (a, b) with
  | Some Ast.K8, _ | _, Some Ast.K8 -> Some Ast.K8
  | Some Ast.K4, _ | _, Some Ast.K4 -> Some Ast.K4
  | None, None -> None

(* [f]-conversion stability: in run-a the value lives in [v-e, v+e]; if the
   integer conversion agrees on both endpoints it agrees everywhere (the
   conversions are monotone), otherwise run-a's integer may differ from the
   baseline's — poison. *)
let int_stable f v e = e = 0.0 || (Float.is_finite e && f (v -. e) = f (v +. e))

(* Convert an abstract value to an exact int, poisoning every atom whose
   error interval could change the result. [f] mirrors the conversion the
   interpreter applies (truncation for as_int / int(), rounding for nint,
   flooring for floor). *)
let as_int_conv ctx f (v : av) =
  (match v.c with
  | Value.Vreal (x, _) ->
    IMap.iter (fun a e -> if not (int_stable f x e) then poison ctx a) v.err
  | Value.Vint _ | Value.Vlog _ | Value.Vstr _ -> ());
  match v.c with
  | Value.Vint i -> i
  | Value.Vreal (x, _) -> f x
  | Value.Vlog _ | Value.Vstr _ -> trap "integer value expected"

let as_int ctx v = as_int_conv ctx (fun x -> int_of_float x) v

(* ------------------------------------------------------------------ *)
(* The error algebra                                                   *)

let get a m = Option.value ~default:0.0 (IMap.find_opt a m)

(* drop exact-zero entries so maps stay sparse *)
let put a e m = if e = 0.0 then m else IMap.add a e m

(* rounding update at epsilon [eps] for a result of magnitude |v|;
   overflow past [cap] means the demoted run may trap where the baseline
   did not — poison and keep a finite heuristic *)
let round_entry ctx ~eps ~cap a v e =
  let sub = if eps = eps32 then sub32 else sub64 in
  let m = Float.abs v +. e in
  let round = if m = 0.0 then 0.0 else Float.max (2.0 *. eps *. m) sub in
  let e' = (e *. (1.0 +. (2.0 *. eps))) +. round in
  if (not (Float.is_finite e')) || Float.abs v +. e' >= cap then begin
    poison ctx a;
    if Float.is_finite e' then e' else Float.abs v +. cap
  end
  else e'

let f32_cap = Fp32.max_finite
let f64_cap = max_float

(* apply the post-operation rounding at baseline kind [k] to every entry,
   plus an extra f32 rounding for kind-tainted atoms when the baseline
   computed in 64-bit (their run may compute this operation in 32-bit) *)
let round_err ctx k v err kt =
  match k with
  | Ast.K4 ->
    IMap.mapi (fun a e -> round_entry ctx ~eps:eps32 ~cap:f32_cap a v e) err
  | Ast.K8 ->
    let err = IMap.mapi (fun a e -> round_entry ctx ~eps:eps64 ~cap:f64_cap a v e) err in
    ISet.fold
      (fun a err -> put a (round_entry ctx ~eps:eps32 ~cap:f32_cap a v (get a err)) err)
      kt err

(* mirror of Interp.mk_real: round the concrete value at kind [k], trap on
   NaN/overflow, and attach the rounded error map *)
let mk_areal ctx k x err kt =
  let x' = Fp32.of_kind k x in
  if not (Float.is_finite x') then
    if Float.is_nan x' then
      trap "NaN produced in real(kind=%d) arithmetic" (Token.int_of_kind k)
    else trap "overflow in real(kind=%d) arithmetic" (Token.int_of_kind k);
  { c = Value.Vreal (x', k); err = round_err ctx k x' err kt; kt }

let merge_err f ex ey =
  IMap.merge
    (fun _ a b -> Some (f (Option.value ~default:0.0 a) (Option.value ~default:0.0 b)))
    ex ey

(* |x'y' - xy| <= |y| ex + |x| ey + ex ey *)
let mul_err x y = merge_err (fun ex ey -> (Float.abs y *. ex) +. (Float.abs x *. ey) +. (ex *. ey))

(* |x'/y' - x/y| <= (|y| ex + |x| ey + ex ey) / (|y| (|y| - ey));
   a divisor interval reaching zero is a trap/Inf divergence: poison *)
let div_err ctx x y ex ey =
  merge_err
    (fun ex ey ->
      let ay = Float.abs y in
      let denom = ay -. ey in
      let num = (ay *. ex) +. (Float.abs x *. ey) +. (ex *. ey) in
      if denom <= 0.0 then num /. Float.max (ay *. ay) 1e-300 (* finite heuristic *)
      else num /. (ay *. denom))
    ex ey
  |> fun merged ->
  (* the merge closure cannot see which atom it serves: a divisor interval
     reaching zero is poisoned here, with atom identities in hand *)
  IMap.iter
    (fun a ey_a -> if ey_a > 0.0 && Float.abs y -. ey_a <= 0.0 then poison ctx a)
    ey;
  merged

(* comparison stability: if atom [a]'s joint interval can bridge the gap
   between x and y, run-a may take the other branch *)
let compare_guard ctx x y ex ey =
  let gap = Float.abs (x -. y) in
  let check a e = if e > 0.0 && e >= gap then poison ctx a in
  IMap.iter (fun a e -> check a (e +. get a ey)) ex;
  IMap.iter (fun a e -> check a (e +. get a ex)) ey

(* ------------------------------------------------------------------ *)
(* Storage                                                             *)

let global_key unit_name var = unit_name ^ "." ^ var

let zero_of_base (base : Ast.base_type) =
  match base with
  | Ast.Treal k -> Value.Vreal (0.0, k)
  | Ast.Tinteger -> Value.Vint 0
  | Ast.Tlogical -> Value.Vlog false

let alloc_cell (base : Ast.base_type) (extents : int list) : cell =
  match extents with
  | [] -> Scalar (ref (pure (zero_of_base base)))
  | _ ->
    let dims = Array.of_list extents in
    let n = Value.elements dims in
    if n < 0 || n > 50_000_000 then trap "array allocation of %d elements refused" n;
    (match base with
    | Ast.Treal kind ->
      Real_array { kind; data = Array.make n 0.0; errs = Array.make n IMap.empty; dims }
    | Ast.Tinteger -> Int_array { data = Array.make n 0; dims }
    | Ast.Tlogical -> Log_array { data = Array.make n false; dims })

(* the atom owning a binding as named in [frame] (dummies and locals live
   in the procedure scope; everything else resolves through the symtab) *)
let binding_atom ctx frame name =
  if Hashtbl.mem frame.vars name then
    match frame.proc with
    | Some p -> ctx.atom_of (Symtab.Proc_scope p, name)
    | None -> None
  else
    match Symtab.lookup_var ctx.st ~in_proc:frame.proc name with
    | Some info -> ctx.atom_of (info.Symtab.v_scope, info.Symtab.v_name)
    | None -> None

(* Aliasing hazard at a by-reference binding: in the baseline the dummy
   shares the actual's cell, but demoting either end makes their kinds
   mismatch, so the rewrite inserts a copy-in/copy-out wrapper — the
   sharing is gone. If the callee can also reach the actual (a module
   variable) by name, the two access paths now denote DIFFERENT storage
   and the copy-out can clobber or resurrect values in ways no interval
   bounds: poison both ends' atoms. *)
let alias_guard ctx frame ~callee ~dummy name =
  if not (Hashtbl.mem frame.vars name) then
    match Symtab.lookup_var ctx.st ~in_proc:frame.proc name with
    | Some { Symtab.v_scope = Symtab.Unit_scope u; v_name; _ }
      when ctx.callee_touches callee (u, v_name) ->
      Option.iter (poison ctx) (ctx.atom_of (Symtab.Unit_scope u, v_name));
      Option.iter (poison ctx) (ctx.atom_of (Symtab.Proc_scope callee, dummy))
    | Some _ | None -> ()

(* By-reference hazards of the kind-mismatch wrapper, charged at binding
   time to every atom whose demotion inserts one (the dummy's own atom
   plus the actual side's kind atoms):
   - intent(out): the wrapper does NOT copy in, so its temporary starts
     at the default 0.0 — on any path where the callee never assigns the
     dummy, reads inside the callee see 0.0 and the copy-out replaces the
     actual's value with 0.0.  Charge the full magnitude of the value.
   - intent(inout) / no intent: the copy-in/copy-out pair replaces the
     actual with an f32 round trip of its value even when the callee
     never touches the dummy.  Charge one f32 rounding.
   - intent(in): no copy-out; reads through the binding are rounded by
     {!read_view}.  Nothing to charge here.
   A store through the dummy overwrites the entry — exactly when the
   hazard disappears (the stored value's own rounding is charged by
   [round_err]). *)
let wrapper_hazard ~(dinfo : Symtab.var_info) atoms v err =
  match dinfo.v_intent with
  | Some Ast.In -> err
  | intent ->
    let x = Float.abs v in
    let charge =
      match intent with
      | Some Ast.Out -> x
      | _ -> if x = 0.0 then 0.0 else Float.max (2.0 *. eps32 *. x) sub32
    in
    if charge = 0.0 then err
    else List.fold_left (fun err a -> put a (Float.max charge (get a err)) err) err atoms

(* reading through a binding owned by atom [a]: the value is kind-tainted
   by [a] and has been (or will be, at a wrapper boundary) f32-rounded *)
let read_view ctx frame name (v : av) =
  match v.c with
  | Value.Vreal (x, _) -> (
    match binding_atom ctx frame name with
    | Some a ->
      {
        v with
        err = put a (round_entry ctx ~eps:eps32 ~cap:f32_cap a x (get a v.err)) v.err;
        kt = ISet.singleton a;
      }
    | None -> { v with kt = ISet.empty })
  | Value.Vint _ | Value.Vlog _ | Value.Vstr _ -> { v with kt = ISet.empty }

(* ------------------------------------------------------------------ *)
(* The mirror interpreter                                              *)

let rec param_value ctx (info : Symtab.var_info) =
  let key =
    (match info.v_scope with
    | Symtab.Proc_scope p -> "p:" ^ p
    | Symtab.Unit_scope u -> "u:" ^ u)
    ^ "." ^ info.v_name
  in
  match Hashtbl.find_opt ctx.params key with
  | Some v -> v
  | None ->
    let in_proc =
      match info.v_scope with Symtab.Proc_scope p -> Some p | Symtab.Unit_scope _ -> None
    in
    let init =
      match info.v_init with
      | Some e -> e
      | None -> trap "parameter %s has no initializer" info.v_name
    in
    let frame = { proc = in_proc; vars = Hashtbl.create 1 } in
    let v = eval_expr ctx frame init in
    let v =
      match (info.v_base, v.c) with
      | Ast.Treal k, _ ->
        let x = Fp32.of_kind k (as_float v.c) in
        (* a demoted parameter folds to its f32 value at compile time *)
        let err, kt =
          match ctx.atom_of (info.v_scope, info.v_name) with
          | Some a when k = Ast.K8 ->
            (put a (Float.abs (Fp32.round x -. x) +. get a v.err) v.err, ISet.singleton a)
          | Some _ | None -> (v.err, ISet.empty)
        in
        { c = Value.Vreal (x, k); err = round_err ctx k x err ISet.empty; kt }
      | Ast.Tinteger, _ -> pure (Value.Vint (as_int ctx v))
      | Ast.Tlogical, _ -> pure (Value.Vlog (as_bool v.c))
    in
    Hashtbl.replace ctx.params key v;
    v

and resolve ctx frame name : [ `Cell of cell | `Param of av ] =
  match Hashtbl.find_opt frame.vars name with
  | Some cell -> `Cell cell
  | None -> (
    match Symtab.lookup_var ctx.st ~in_proc:frame.proc name with
    | None -> trap "undeclared variable %s" name
    | Some info ->
      if info.v_parameter then `Param (param_value ctx info)
      else (
        match info.v_scope with
        | Symtab.Unit_scope u -> (
          match Hashtbl.find_opt ctx.globals (global_key u name) with
          | Some cell -> `Cell cell
          | None -> trap "global %s.%s not allocated" u name)
        | Symtab.Proc_scope p ->
          trap "variable %s local to %s referenced out of scope" name p))

and scalar_ref ctx frame name =
  match resolve ctx frame name with
  | `Cell (Scalar r) -> r
  | `Cell (Real_array _ | Int_array _ | Log_array _) -> trap "array %s used as a scalar" name
  | `Param _ -> trap "parameter %s cannot be assigned" name

and eval_expr ctx frame (e : Ast.expr) : av =
  step ctx;
  match e with
  | Ast.Int_lit i -> pure (Value.Vint i)
  | Ast.Real_lit { value; kind; _ } -> pure (Value.Vreal (Fp32.of_kind kind value, kind))
  | Ast.Logical_lit b -> pure (Value.Vlog b)
  | Ast.Str_lit s -> pure (Value.Vstr s)
  | Ast.Var name -> (
    match resolve ctx frame name with
    | `Param v -> v
    | `Cell (Scalar r) -> read_view ctx frame name !r
    | `Cell (Real_array _ | Int_array _ | Log_array _) ->
      trap "whole array %s used as a value" name)
  | Ast.Unop (Ast.Neg, e1) -> (
    let v = eval_expr ctx frame e1 in
    match v.c with
    | Value.Vint i -> { v with c = Value.Vint (-i) }
    | Value.Vreal (x, k) -> mk_areal ctx k (-.x) v.err v.kt
    | Value.Vlog _ | Value.Vstr _ -> trap "negation of non-numeric value")
  | Ast.Unop (Ast.Not, e1) -> pure (Value.Vlog (not (as_bool (eval_expr ctx frame e1).c)))
  | Ast.Binop (op, a, b) -> eval_binop ctx frame op a b
  | Ast.Index (name, args) -> (
    match Hashtbl.find_opt frame.vars name with
    | Some cell -> array_load ctx frame name cell args
    | None -> (
      match Symtab.lookup_var ctx.st ~in_proc:frame.proc name with
      | Some info when info.v_dims <> [] -> (
        match resolve ctx frame name with
        | `Cell cell -> array_load ctx frame name cell args
        | `Param _ -> trap "array parameter %s unsupported" name)
      | Some _ -> trap "scalar %s subscripted" name
      | None ->
        if Builtins.is_intrinsic_function name then eval_intrinsic ctx frame name args
        else (
          match call_user ctx frame name args with
          | Some v -> v
          | None -> trap "subroutine %s called as a function" name)))

and eval_binop ctx frame op a b =
  match op with
  | Ast.And ->
    if as_bool (eval_expr ctx frame a).c then
      pure (Value.Vlog (as_bool (eval_expr ctx frame b).c))
    else pure (Value.Vlog false)
  | Ast.Or ->
    if as_bool (eval_expr ctx frame a).c then pure (Value.Vlog true)
    else pure (Value.Vlog (as_bool (eval_expr ctx frame b).c))
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le
  | Ast.Gt | Ast.Ge -> (
    let va = eval_expr ctx frame a in
    let vb = eval_expr ctx frame b in
    let ka = value_kind va.c in
    let kb = value_kind vb.c in
    let kt = ISet.union va.kt vb.kt in
    match (va.c, vb.c, op) with
    | Value.Vint x, Value.Vint y, (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow) ->
      pure
        (Value.Vint
           (match op with
           | Ast.Add -> x + y
           | Ast.Sub -> x - y
           | Ast.Mul -> x * y
           | Ast.Div -> if y = 0 then trap "integer division by zero" else x / y
           | Ast.Pow ->
             if y < 0 then trap "negative integer exponent"
             else begin
               let rec pow acc n = if n = 0 then acc else pow (acc * x) (n - 1) in
               pow 1 y
             end
           | _ -> assert false))
    | _, _, (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) ->
      let k =
        match promote_kind ka kb with Some k -> k | None -> trap "numeric operands expected"
      in
      let x = as_float va.c and y = as_float vb.c in
      let err =
        match op with
        | Ast.Add | Ast.Sub -> merge_err ( +. ) va.err vb.err
        | Ast.Mul -> mul_err x y va.err vb.err
        | Ast.Div -> div_err ctx x y va.err vb.err
        | _ -> assert false
      in
      mk_areal ctx k
        (match op with
        | Ast.Add -> x +. y
        | Ast.Sub -> x -. y
        | Ast.Mul -> x *. y
        | Ast.Div -> x /. y
        | _ -> assert false)
        err kt
    | _, _, Ast.Pow -> (
      let k =
        match promote_kind ka kb with Some k -> k | None -> trap "numeric operands expected"
      in
      let x = as_float va.c in
      match vb.c with
      | Value.Vint n when abs n <= 4 ->
        (* strength-reduced small integer powers: mirror the repeated
           multiplication, folding the product rule the same number of
           times; the exponent is an exact int (err-free by construction) *)
        let rec pow (acc, eacc) i =
          if i = 0 then (acc, eacc)
          else pow (acc *. x, mul_err acc x eacc va.err) (i - 1)
        in
        let v, err = pow (1.0, IMap.empty) (abs n) in
        if n < 0 then
          let err = div_err ctx 1.0 v IMap.empty err in
          mk_areal ctx k (1.0 /. v) err kt
        else mk_areal ctx k v err kt
      | _ ->
        let y = as_float vb.c in
        let raw = Float.pow x y in
        (* x^y is monotone in each argument on x > 0, so the extreme of the
           error rectangle is at a corner; an interval reaching x <= 0 can
           go complex (NaN trap divergence) *)
        let err =
          merge_err
            (fun ex ey ->
              if ex = 0.0 && ey = 0.0 then 0.0
              else if x -. ex <= 0.0 then Float.abs raw +. 1.0
              else
                List.fold_left
                  (fun acc (dx, dy) ->
                    let c = Float.pow (x +. dx) (y +. dy) in
                    if Float.is_finite c then Float.max acc (Float.abs (c -. raw))
                    else infinity)
                  0.0
                  [ (ex, ey); (ex, -.ey); (-.ex, ey); (-.ex, -.ey) ])
            va.err vb.err
        in
        IMap.iter
          (fun a e ->
            if e > 0.0 then
              let ex = get a va.err in
              if x -. ex <= 0.0 || not (Float.is_finite e) then poison ctx a)
          err;
        let err = IMap.map (fun e -> if Float.is_finite e then e else Float.abs raw +. 1.0) err in
        mk_areal ctx k raw err kt)
    | _, _, (Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) -> (
      match (va.c, vb.c) with
      | Value.Vlog x, Value.Vlog y ->
        pure
          (Value.Vlog
             (match op with
             | Ast.Eq -> x = y
             | Ast.Ne -> x <> y
             | _ -> trap "ordering of logicals"))
      | _ ->
        let x = as_float va.c and y = as_float vb.c in
        compare_guard ctx x y va.err vb.err;
        pure
          (Value.Vlog
             (match op with
             | Ast.Eq -> x = y
             | Ast.Ne -> x <> y
             | Ast.Lt -> x < y
             | Ast.Le -> x <= y
             | Ast.Gt -> x > y
             | Ast.Ge -> x >= y
             | _ -> assert false)))
    | _, _, (Ast.And | Ast.Or) -> assert false)

and eval_indices ctx frame args =
  List.map (fun a -> as_int ctx (eval_expr ctx frame a)) args

and array_load ctx frame name cell args =
  let indices = eval_indices ctx frame args in
  match cell with
  | Real_array { kind; data; errs; dims } ->
    let o = Value.offset ~name ~dims indices in
    read_view ctx frame name { c = Value.Vreal (data.(o), kind); err = errs.(o); kt = ISet.empty }
  | Int_array { data; dims } -> pure (Value.Vint (data.(Value.offset ~name ~dims indices)))
  | Log_array { data; dims } -> pure (Value.Vlog (data.(Value.offset ~name ~dims indices)))
  | Scalar _ -> trap "scalar %s subscripted" name

(* storing [v] into a real location of declared kind [kind] through the
   binding [name]: round the concrete exactly as the interpreter does
   (trapping non-finite), round every error entry at the declared kind,
   and charge the extra f32 rounding to the binding's atom *)
and store_real ctx frame name kind (v : av) =
  let x = Fp32.of_kind kind (as_float v.c) in
  if not (Float.is_finite x) then
    trap "non-finite value stored to %s (real(kind=%d))" name (Token.int_of_kind kind);
  let kt =
    match binding_atom ctx frame name with
    | Some a -> ISet.add a v.kt
    | None -> v.kt
  in
  (x, round_err ctx kind x v.err kt)

and array_store ctx frame name cell args v =
  let indices = eval_indices ctx frame args in
  match cell with
  | Real_array { kind; data; errs; dims } ->
    let x, err = store_real ctx frame name kind v in
    let o = Value.offset ~name ~dims indices in
    data.(o) <- x;
    errs.(o) <- err
  | Int_array { data; dims } -> data.(Value.offset ~name ~dims indices) <- as_int ctx v
  | Log_array { data; dims } -> data.(Value.offset ~name ~dims indices) <- as_bool v.c
  | Scalar _ -> trap "scalar %s subscripted" name

and scalar_store ctx frame name r (v : av) =
  match !r.c with
  | Value.Vreal (_, k) ->
    let x, err = store_real ctx frame name k v in
    r := { c = Value.Vreal (x, k); err; kt = ISet.empty }
  | Value.Vint _ -> r := pure (Value.Vint (as_int ctx v))
  | Value.Vlog _ -> r := pure (Value.Vlog (as_bool v.c))
  | Value.Vstr _ -> r := { v with kt = ISet.empty }

(* ------------------------------------------------------------------ *)
(* Intrinsics                                                          *)

and eval_intrinsic ctx frame name args =
  let unary () =
    match args with
    | [ a ] -> eval_expr ctx frame a
    | _ -> trap "intrinsic %s expects one argument" name
  in
  match name with
  | "abs" -> (
    match unary () with
    | { c = Value.Vint i; _ } -> pure (Value.Vint (abs i))
    | { c = Value.Vreal (x, k); err; kt } -> mk_areal ctx k (Float.abs x) err kt
    | _ -> trap "abs of non-numeric value")
  | "sqrt" | "exp" | "log" | "log10" | "sin" | "cos" | "tan" | "atan" | "asin" | "acos"
  | "sinh" | "cosh" | "tanh" | "aint" | "anint" -> (
    match unary () with
    | { c = Value.Vreal (x, k); err; kt } ->
      let f =
        match name with
        | "sqrt" -> sqrt
        | "exp" -> exp
        | "log" -> log
        | "log10" -> log10
        | "sin" -> sin
        | "cos" -> cos
        | "tan" -> tan
        | "atan" -> atan
        | "asin" -> asin
        | "acos" -> acos
        | "sinh" -> sinh
        | "cosh" -> cosh
        | "tanh" -> tanh
        | "aint" -> Float.trunc
        | "anint" -> Float.round
        | _ -> assert false
      in
      let lip e =
        (* per-atom propagated error for |f(x') - f(x)|, x' in [x-e, x+e];
           a [None] poisons: the demoted run may trap (NaN) where the
           baseline did not *)
        if e = 0.0 then Some 0.0
        else
          match name with
          | "sin" | "cos" -> Some (Float.min e 2.0)
          | "atan" -> Some (Float.min e Float.pi)
          | "tanh" -> Some (Float.min e 2.0)
          | "sqrt" ->
            if x -. e < 0.0 then None
            else if x -. e = 0.0 then Some (sqrt e)
            else Some (Float.min (e /. (2.0 *. sqrt (x -. e))) (sqrt e))
          | "exp" ->
            let hi = exp (x +. e) in
            if Float.is_finite hi then Some (hi -. exp x) else None
          | "log" -> if x -. e <= 0.0 then None else Some (log (x /. (x -. e)))
          | "log10" ->
            if x -. e <= 0.0 then None else Some (log (x /. (x -. e)) /. log 10.0)
          | "tan" ->
            let m = Float.abs (cos x) -. e in
            if m <= 0.0 then None else Some (e /. (m *. m))
          | "asin" | "acos" ->
            let t = Float.abs x +. e in
            if t >= 1.0 then None else Some (Float.min (e /. sqrt (1.0 -. (t *. t))) Float.pi)
          | "sinh" | "cosh" ->
            let t = Float.abs x +. e in
            if t > 700.0 then None else Some (e *. cosh t)
          | "aint" | "anint" ->
            let g = if name = "aint" then Float.trunc else Float.round in
            if g (x -. e) = g (x +. e) then Some 0.0 else Some (e +. 1.0)
          | _ -> assert false
      in
      let err =
        IMap.mapi
          (fun a e ->
            match lip e with
            | Some e' -> e'
            | None ->
              poison ctx a;
              Float.abs (f x) +. e +. 1.0)
          err
      in
      mk_areal ctx k (f x) err kt
    | _ -> trap "%s of non-real value" name)
  | "min" | "max" ->
    let vs = List.map (eval_expr ctx frame) args in
    if List.length vs < 2 then trap "%s needs at least two arguments" name;
    let kind = List.fold_left (fun acc v -> promote_kind acc (value_kind v.c)) None vs in
    (match kind with
    | None ->
      let ints = List.map (fun v -> as_int ctx v) vs in
      pure
        (Value.Vint
           (List.fold_left (if name = "min" then min else max) (List.hd ints) (List.tl ints)))
    | Some k ->
      let fs = List.map (fun v -> as_float v.c) vs in
      let f =
        List.fold_left (if name = "min" then Float.min else Float.max) (List.hd fs) (List.tl fs)
      in
      (* |min_i x'_i - min_i x_i| <= max_i |x'_i - x_i| *)
      let err =
        List.fold_left (fun acc v -> merge_err Float.max acc v.err) IMap.empty vs
      in
      let kt = List.fold_left (fun acc v -> ISet.union acc v.kt) ISet.empty vs in
      mk_areal ctx k f err kt)
  | "mod" -> (
    match args with
    | [ a; b ] -> (
      let va = eval_expr ctx frame a in
      let vb = eval_expr ctx frame b in
      match (va.c, vb.c) with
      | Value.Vint x, Value.Vint y ->
        if y = 0 then trap "mod with zero divisor" else pure (Value.Vint (x - (x / y * y)))
      | _ ->
        let k =
          match promote_kind (value_kind va.c) (value_kind vb.c) with
          | Some k -> k
          | None -> trap "mod of non-numeric"
        in
        let x = as_float va.c and y = as_float vb.c in
        let r = Float.rem x y in
        (* rem jumps by |y| at multiples of y; inside one period it is a
           translation. A perturbed divisor shifts every boundary — too
           wild to bound tightly, poison. *)
        let boundary_dist =
          let q = Float.abs y in
          if q = 0.0 then 0.0 else Float.min (Float.abs r) (q -. Float.abs r)
        in
        let err =
          merge_err
            (fun ex ey ->
              if ey > 0.0 then ex +. ey +. Float.abs y
              else if ex >= boundary_dist then ex +. Float.abs y
              else ex)
            va.err vb.err
        in
        IMap.iter (fun a ey -> if ey > 0.0 then poison ctx a) vb.err;
        mk_areal ctx k r err (ISet.union va.kt vb.kt))
    | _ -> trap "mod expects two arguments")
  | "atan2" -> (
    match args with
    | [ a; b ] -> (
      let va = eval_expr ctx frame a in
      let vb = eval_expr ctx frame b in
      match promote_kind (value_kind va.c) (value_kind vb.c) with
      | Some k ->
        let y = as_float va.c and x = as_float vb.c in
        let r = Float.hypot x y in
        (* gradient magnitude is 1/r; the range is (-pi, pi], so 2*pi
           always bounds the jump across the branch cut *)
        let err =
          merge_err
            (fun ey ex ->
              let m = r -. (ey +. ex) in
              if m <= 0.0 then 2.0 *. Float.pi
              else Float.min ((ey +. ex) /. m) (2.0 *. Float.pi))
            va.err vb.err
        in
        mk_areal ctx k (Float.atan2 y x) err (ISet.union va.kt vb.kt)
      | None -> trap "atan2 of non-real values")
    | _ -> trap "atan2 expects two arguments")
  | "sign" -> (
    match args with
    | [ a; b ] -> (
      let x = eval_expr ctx frame a in
      let y = eval_expr ctx frame b in
      match promote_kind (value_kind x.c) (value_kind y.c) with
      | Some k ->
        let xf = as_float x.c and yf = as_float y.c in
        let m = Float.abs xf in
        let err =
          merge_err
            (fun ex ey ->
              (* a flippable sign of y doubles the magnitude swing *)
              if ey > 0.0 && Float.abs yf <= ey then ex +. (2.0 *. (m +. ex)) else ex)
            x.err y.err
        in
        mk_areal ctx k (if yf >= 0.0 then m else -.m) err (ISet.union x.kt y.kt)
      | None ->
        let m = abs (as_int ctx x) in
        pure (Value.Vint (if as_int ctx y >= 0 then m else -m)))
    | _ -> trap "sign expects two arguments")
  | "real" -> (
    match args with
    | [ a ] ->
      let v = eval_expr ctx frame a in
      let x = Fp32.round (as_float v.c) in
      (* result kind is pinned to K4: the kind taint dissolves, the value
         error survives one f32 rounding (real() does not trap non-finite,
         mirroring the interpreter; an overflowing entry poisons inside
         round_err) *)
      { c = Value.Vreal (x, Ast.K4); err = round_err ctx Ast.K4 x v.err ISet.empty;
        kt = ISet.empty }
    | [ a; Ast.Int_lit k ] -> (
      let v = eval_expr ctx frame a in
      match Token.kind_of_int k with
      | Some kk ->
        let x = Fp32.of_kind kk (as_float v.c) in
        { c = Value.Vreal (x, kk); err = round_err ctx kk x v.err ISet.empty; kt = ISet.empty }
      | None -> trap "real(): unsupported kind %d" k)
    | _ -> trap "real() expects (x) or (x, kind)")
  | "dble" ->
    let v = unary () in
    { c = Value.Vreal (as_float v.c, Ast.K8); err = v.err; kt = ISet.empty }
  | "int" -> pure (Value.Vint (as_int_conv ctx (fun x -> int_of_float x) (unary ())))
  | "nint" ->
    pure (Value.Vint (as_int_conv ctx (fun x -> int_of_float (Float.round x)) (unary ())))
  | "floor" ->
    pure (Value.Vint (as_int_conv ctx (fun x -> int_of_float (Float.floor x)) (unary ())))
  | "dot_product" -> (
    match args with
    | [ Ast.Var a; Ast.Var b ] -> (
      match (resolve ctx frame a, resolve ctx frame b) with
      | ( `Cell (Real_array { kind = ka; data = da; errs = ea; _ }),
          `Cell (Real_array { kind = kb; data = db; errs = eb; _ }) ) ->
        let n = min (Array.length da) (Array.length db) in
        let kind = if ka = Ast.K8 || kb = Ast.K8 then Ast.K8 else Ast.K4 in
        let kt =
          ISet.union
            (match binding_atom ctx frame a with Some i -> ISet.singleton i | None -> ISet.empty)
            (match binding_atom ctx frame b with Some i -> ISet.singleton i | None -> ISet.empty)
        in
        let s = ref 0.0 and serr = ref IMap.empty in
        for i = 0 to n - 1 do
          let xa = read_view ctx frame a { c = Value.Vreal (da.(i), ka); err = ea.(i); kt = ISet.empty } in
          let xb = read_view ctx frame b { c = Value.Vreal (db.(i), kb); err = eb.(i); kt = ISet.empty } in
          let p = da.(i) *. db.(i) in
          let perr = round_err ctx kind (Fp32.of_kind kind p) (mul_err da.(i) db.(i) xa.err xb.err) kt in
          let p = Fp32.of_kind kind p in
          let s' = Fp32.of_kind kind (!s +. p) in
          serr := round_err ctx kind s' (merge_err ( +. ) !serr perr) kt;
          s := s'
        done;
        mk_areal ctx kind !s !serr kt
      | _ -> trap "dot_product expects two real arrays")
    | _ -> trap "dot_product expects two whole-array arguments")
  | "sum" | "maxval" | "minval" -> (
    match args with
    | [ Ast.Var arr ] -> (
      match resolve ctx frame arr with
      | `Cell (Real_array { kind; data; errs; _ }) ->
        let n = Array.length data in
        let kt =
          match binding_atom ctx frame arr with
          | Some i -> ISet.singleton i
          | None -> ISet.empty
        in
        let elem i =
          read_view ctx frame arr
            { c = Value.Vreal (data.(i), kind); err = errs.(i); kt = ISet.empty }
        in
        (match name with
        | "sum" ->
          let s = ref 0.0 and serr = ref IMap.empty in
          for i = 0 to n - 1 do
            let x = elem i in
            let s' = Fp32.of_kind kind (!s +. data.(i)) in
            serr := round_err ctx kind s' (merge_err ( +. ) !serr x.err) kt;
            s := s'
          done;
          mk_areal ctx kind !s !serr kt
        | "maxval" | "minval" ->
          if n = 0 then trap "%s of empty array" name
          else begin
            let fold = if name = "maxval" then Float.max else Float.min in
            let v = ref data.(0) and err = ref (elem 0).err in
            for i = 1 to n - 1 do
              let x = elem i in
              v := fold !v data.(i);
              err := merge_err Float.max !err x.err
            done;
            mk_areal ctx kind !v !err kt
          end
        | _ -> assert false)
      | `Cell (Int_array { data; _ }) -> (
        match name with
        | "sum" -> pure (Value.Vint (Array.fold_left ( + ) 0 data))
        | "maxval" -> pure (Value.Vint (Array.fold_left max min_int data))
        | "minval" -> pure (Value.Vint (Array.fold_left min max_int data))
        | _ -> assert false)
      | `Cell (Scalar _ | Log_array _) | `Param _ -> trap "%s of non-array" name)
    | _ -> trap "%s expects a whole-array argument" name)
  | "size" -> (
    match args with
    | [ Ast.Var arr ] -> (
      match resolve ctx frame arr with
      | `Cell (Real_array { dims; _ }) -> pure (Value.Vint (Value.elements dims))
      | `Cell (Int_array { dims; _ }) -> pure (Value.Vint (Value.elements dims))
      | `Cell (Log_array { dims; _ }) -> pure (Value.Vint (Value.elements dims))
      | `Cell (Scalar _) | `Param _ -> trap "size of non-array")
    | [ Ast.Var arr; d ] -> (
      let dim = as_int ctx (eval_expr ctx frame d) in
      match resolve ctx frame arr with
      | `Cell (Real_array { dims; _ })
      | `Cell (Int_array { dims; _ })
      | `Cell (Log_array { dims; _ }) ->
        if dim >= 1 && dim <= Array.length dims then pure (Value.Vint dims.(dim - 1))
        else trap "size: dimension %d out of range" dim
      | `Cell (Scalar _) | `Param _ -> trap "size of non-array")
    | _ -> trap "size expects an array argument")
  | "epsilon" | "huge" | "tiny" -> (
    match unary () with
    | { c = Value.Vreal (_, k); kt; _ } ->
      let model n k =
        match (n, k) with
        | "epsilon", Ast.K8 -> epsilon_float
        | "epsilon", Ast.K4 -> 1.1920928955078125e-07
        | "huge", Ast.K8 -> max_float
        | "huge", Ast.K4 -> Fp32.max_finite
        | "tiny", Ast.K8 -> min_float
        | "tiny", Ast.K4 -> Fp32.min_positive_normal
        | _ -> assert false
      in
      let v = model name k in
      (* a kind-tainted argument flips the inquiry's answer outright in the
         demoted run: the error is the full distance between the kinds *)
      let gap = Float.abs (model name Ast.K4 -. model name Ast.K8) in
      let err =
        if k = Ast.K8 then ISet.fold (fun a m -> put a gap m) kt IMap.empty else IMap.empty
      in
      { c = Value.Vreal (v, k); err; kt }
    | _ -> trap "%s of non-real value" name)
  | _ -> trap "unknown intrinsic %s" name

(* ------------------------------------------------------------------ *)
(* Procedure calls                                                     *)

and call_user ctx frame name arg_exprs : av option =
  let p =
    match Symtab.find_proc ctx.st name with
    | Some p -> p
    | None -> trap "unknown procedure %s" name
  in
  ctx.depth <- ctx.depth + 1;
  if ctx.depth > 200 then trap "call depth limit exceeded at %s" name;
  if List.length arg_exprs <> List.length p.Ast.params then
    trap "procedure %s expects %d arguments, got %d" name (List.length p.Ast.params)
      (List.length arg_exprs);
  let callee_frame = { proc = Some name; vars = Hashtbl.create 16 } in
  let copy_out = ref [] in
  List.iter2
    (fun dummy actual ->
      let dinfo =
        match Symtab.lookup_var ctx.st ~in_proc:(Some name) dummy with
        | Some i -> i
        | None -> trap "dummy %s of %s undeclared" dummy name
      in
      if dinfo.v_dims <> [] then begin
        match actual with
        | Ast.Var a -> (
          match resolve ctx frame a with
          | `Cell (Real_array { kind; _ } as cell) -> (
            match dinfo.v_base with
            | Ast.Treal dk when dk = kind ->
              alias_guard ctx frame ~callee:name ~dummy a;
              (match cell with
              | Real_array { data; errs; _ } ->
                let atoms =
                  List.filter_map Fun.id
                    [ ctx.atom_of (Symtab.Proc_scope name, dummy); binding_atom ctx frame a ]
                in
                Array.iteri
                  (fun i e -> errs.(i) <- wrapper_hazard ~dinfo atoms data.(i) e)
                  errs
              | Scalar _ | Int_array _ | Log_array _ -> ());
              Hashtbl.replace callee_frame.vars dummy cell
            | Ast.Treal dk ->
              trap
                "argument %s of %s: real(kind=%d) array passed to real(kind=%d) dummy %s — \
                 wrapper required"
                a name (Token.int_of_kind kind) (Token.int_of_kind dk) dummy
            | Ast.Tinteger | Ast.Tlogical -> trap "array type mismatch for %s of %s" dummy name)
          | `Cell (Int_array _ as cell) -> (
            match dinfo.v_base with
            | Ast.Tinteger -> Hashtbl.replace callee_frame.vars dummy cell
            | Ast.Treal _ | Ast.Tlogical -> trap "array type mismatch for %s of %s" dummy name)
          | `Cell (Log_array _ as cell) -> (
            match dinfo.v_base with
            | Ast.Tlogical -> Hashtbl.replace callee_frame.vars dummy cell
            | Ast.Treal _ | Ast.Tinteger -> trap "array type mismatch for %s of %s" dummy name)
          | `Cell (Scalar _) -> trap "scalar %s passed to array dummy %s of %s" a dummy name
          | `Param _ -> trap "parameter %s passed to array dummy" a)
        | _ -> trap "array dummy %s of %s requires a whole-array actual argument" dummy name
      end
      else begin
        match (actual, dinfo.v_base) with
        | Ast.Var a, _ -> (
          match resolve ctx frame a with
          | `Cell (Scalar r as cell) -> (
            match (!r.c, dinfo.v_base) with
            | Value.Vreal (_, ak), Ast.Treal dk ->
              if ak = dk then begin
                alias_guard ctx frame ~callee:name ~dummy a;
                let atoms =
                  List.filter_map Fun.id
                    [ ctx.atom_of (Symtab.Proc_scope name, dummy); binding_atom ctx frame a ]
                in
                r := { !r with err = wrapper_hazard ~dinfo atoms (as_float !r.c) !r.err };
                Hashtbl.replace callee_frame.vars dummy cell
              end
              else
                trap
                  "argument %s of %s: real(kind=%d) passed to real(kind=%d) dummy %s — wrapper \
                   required"
                  a name (Token.int_of_kind ak) (Token.int_of_kind dk) dummy
            | Value.Vint _, Ast.Tinteger | Value.Vlog _, Ast.Tlogical ->
              Hashtbl.replace callee_frame.vars dummy cell
            | _ -> trap "type mismatch binding %s to dummy %s of %s" a dummy name)
          | `Param v -> bind_by_value ctx callee_frame ~callee:name ~dummy ~dinfo ~actual v
          | `Cell (Real_array _ | Int_array _ | Log_array _) ->
            trap "array %s passed to scalar dummy %s of %s" a dummy name)
        | _, _ ->
          let v = eval_expr ctx frame actual in
          bind_by_value ctx callee_frame ~callee:name ~dummy ~dinfo ~actual v;
          (match (actual, dinfo.v_intent) with
          | Ast.Index (arr_name, idx), (Some Ast.Out | Some Ast.Inout | None) -> (
            match Symtab.lookup_var ctx.st ~in_proc:frame.proc arr_name with
            | Some { v_dims = _ :: _; v_parameter = false; _ } ->
              copy_out := (arr_name, idx, dummy) :: !copy_out
            | Some _ | None -> ())
          | _ -> ())
      end)
    p.Ast.params arg_exprs;
  List.iter
    (fun (info : Symtab.var_info) ->
      if (not (Hashtbl.mem callee_frame.vars info.v_name)) && not info.v_parameter then begin
        let extents =
          List.map (fun d -> as_int ctx (eval_expr ctx callee_frame d)) info.v_dims
        in
        Hashtbl.replace callee_frame.vars info.v_name (alloc_cell info.v_base extents)
      end)
    (Symtab.vars_of_scope ctx.st (Symtab.Proc_scope name));
  List.iter
    (fun (info : Symtab.var_info) ->
      match info.v_init with
      | Some e when not info.v_parameter -> (
        let v = eval_expr ctx callee_frame e in
        match Hashtbl.find_opt callee_frame.vars info.v_name with
        | Some (Scalar r) -> scalar_store ctx callee_frame info.v_name r v
        | Some _ | None -> trap "initializer on array %s unsupported" info.v_name)
      | Some _ | None -> ())
    (Symtab.vars_of_scope ctx.st (Symtab.Proc_scope name));
  let finish () = ctx.depth <- ctx.depth - 1 in
  (match exec_block ctx callee_frame p.Ast.proc_body with
  | () -> ()
  | exception Return_signal -> ()
  | exception e ->
    finish ();
    raise e);
  finish ();
  List.iter
    (fun (arr_name, idx, dummy) ->
      match Hashtbl.find_opt callee_frame.vars dummy with
      | Some (Scalar r) -> (
        match resolve ctx frame arr_name with
        | `Cell cell ->
          array_store ctx frame arr_name cell idx (read_view ctx callee_frame dummy !r)
        | `Param _ -> ())
      | Some _ | None -> ())
    !copy_out;
  match p.Ast.proc_kind with
  | Ast.Subroutine -> None
  | Ast.Function { result } -> (
    match Hashtbl.find_opt callee_frame.vars result with
    | Some (Scalar r) -> Some (read_view ctx callee_frame result !r)
    | Some _ -> trap "array-valued function %s unsupported" name
    | None -> trap "function %s has no result cell" name)

and bind_by_value ctx callee_frame ~callee ~dummy ~dinfo ~actual (v : av) =
  match (dinfo.Symtab.v_base, v.c) with
  | Ast.Treal dk, Value.Vreal (_, ak) ->
    if ak <> dk then begin
      if is_real_literal actual then begin
        (* a kind-mismatched literal actual makes EVERY variant take the
           wrapper at this site; with intent(out) the uninitialised
           temporary can then surface under any atom's demotion, so no
           per-atom bound is attributable — give up on the whole program *)
        if dinfo.v_intent = Some Ast.Out then
          Array.iteri (fun a _ -> poison ctx a) ctx.poisoned;
        Hashtbl.replace callee_frame.vars dummy
          (Scalar (ref (pure (Value.Vreal (Fp32.of_kind dk (as_float v.c), dk)))))
      end
      else
        trap
          "argument %d-ish of %s: real(kind=%d) value passed to real(kind=%d) dummy %s — \
           wrapper required"
          0 callee (Token.int_of_kind ak) (Token.int_of_kind dk) dummy
    end
    else begin
      (* by-value copy: the store into the dummy cell rounds at [dk] *)
      let x = Fp32.of_kind dk (as_float v.c) in
      let kt =
        match ctx.atom_of (Symtab.Proc_scope callee, dummy) with
        | Some a -> ISet.add a v.kt
        | None -> v.kt
      in
      let err = wrapper_hazard ~dinfo (ISet.elements kt) x (round_err ctx dk x v.err kt) in
      Hashtbl.replace callee_frame.vars dummy
        (Scalar (ref { c = Value.Vreal (x, dk); err; kt = ISet.empty }))
    end
  | Ast.Treal dk, Value.Vint i ->
    Hashtbl.replace callee_frame.vars dummy
      (Scalar (ref (pure (Value.Vreal (Fp32.of_kind dk (float_of_int i), dk)))))
  | Ast.Tinteger, Value.Vint _ | Ast.Tlogical, Value.Vlog _ ->
    Hashtbl.replace callee_frame.vars dummy (Scalar (ref { v with kt = ISet.empty }))
  | _ -> trap "type mismatch binding value to dummy %s of %s" dummy callee

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

and exec_block ctx frame blk = List.iter (exec_stmt ctx frame) blk

and exec_stmt ctx frame (s : Ast.stmt) =
  step ctx;
  match s.node with
  | Ast.Assign (lhs, rhs) -> (
    let v = eval_expr ctx frame rhs in
    match lhs with
    | Ast.Lvar name -> (
      match resolve ctx frame name with
      | `Cell (Scalar r) -> scalar_store ctx frame name r v
      | `Cell _ -> trap "assignment to whole array %s unsupported" name
      | `Param _ -> trap "assignment to parameter %s" name)
    | Ast.Lindex (name, idx) -> (
      match resolve ctx frame name with
      | `Cell cell -> array_store ctx frame name cell idx v
      | `Param _ -> trap "assignment to parameter %s" name))
  | Ast.Call (name, args) ->
    if Builtins.is_intrinsic_subroutine name then exec_builtin_call ctx frame name args
    else ignore (call_user ctx frame name args)
  | Ast.If (arms, els) ->
    let rec go = function
      | [] -> exec_block ctx frame els
      | (cond, blk) :: rest ->
        if as_bool (eval_expr ctx frame cond).c then exec_block ctx frame blk else go rest
    in
    go arms
  | Ast.Do { var; from_; to_; step = stp_e; body; _ } ->
    let r = scalar_ref ctx frame var in
    let lo = as_int ctx (eval_expr ctx frame from_) in
    let hi = as_int ctx (eval_expr ctx frame to_) in
    let stp = match stp_e with Some e -> as_int ctx (eval_expr ctx frame e) | None -> 1 in
    if stp = 0 then trap "do loop with zero step";
    (try
       let i = ref lo in
       while (stp > 0 && !i <= hi) || (stp < 0 && !i >= hi) do
         r := pure (Value.Vint !i);
         step ctx;
         (try exec_block ctx frame body with Cycle_signal -> ());
         i := !i + stp
       done
     with Exit_signal -> ())
  | Ast.Do_while { cond; body; _ } -> (
    try
      while as_bool (eval_expr ctx frame cond).c do
        step ctx;
        try exec_block ctx frame body with Cycle_signal -> ()
      done
    with Exit_signal -> ())
  | Ast.Select { selector; arms; default } ->
    let sel = eval_expr ctx frame selector in
    let sel_c = sel.c in
    let matches item =
      match (item, sel_c) with
      | Ast.Case_value v, _ -> (
        match ((eval_expr ctx frame v).c, sel_c) with
        | Value.Vint a, Value.Vint b -> a = b
        | Value.Vlog a, Value.Vlog b -> a = b
        | _ -> trap "case value incompatible with selector")
      | Ast.Case_range (lo, hi), Value.Vint x ->
        let above =
          match lo with Some e -> x >= as_int ctx (eval_expr ctx frame e) | None -> true
        in
        let below =
          match hi with Some e -> x <= as_int ctx (eval_expr ctx frame e) | None -> true
        in
        above && below
      | Ast.Case_range _, _ -> trap "case range requires an integer selector"
    in
    let rec go = function
      | [] -> exec_block ctx frame default
      | (items, blk) :: rest ->
        if List.exists matches items then exec_block ctx frame blk else go rest
    in
    go arms
  | Ast.Exit_stmt -> raise Exit_signal
  | Ast.Cycle_stmt -> raise Cycle_signal
  | Ast.Return_stmt -> raise Return_signal
  | Ast.Stop_stmt m -> raise (Stop_signal (Option.value ~default:"" m))
  | Ast.Print_stmt args -> (
    let vs = List.map (fun a -> eval_expr ctx frame a) args in
    match vs with
    | { c = Value.Vstr key; _ } :: rest ->
      List.iter
        (fun (v : av) ->
          match v.c with
          | Value.Vreal (x, _) ->
            ctx.samples <- { s_key = key; s_value = x; s_err = v.err } :: ctx.samples
          | Value.Vint i ->
            ctx.samples <-
              { s_key = key; s_value = float_of_int i; s_err = IMap.empty } :: ctx.samples
          | Value.Vlog _ | Value.Vstr _ -> ())
        rest
    | _ -> ())

and exec_builtin_call ctx frame name args =
  match (name, args) with
  | "mpi_allreduce", [ send; Ast.Var recv; Ast.Str_lit op ] ->
    let v = eval_expr ctx frame send in
    (match op with
    | "sum" | "max" | "min" -> ()
    | _ -> trap "mpi_allreduce: unknown op %s" op);
    let r = scalar_ref ctx frame recv in
    scalar_store ctx frame recv r v
  | "mpi_allreduce", _ -> trap "mpi_allreduce expects (send, recv, 'op')"
  | "mpi_barrier", [] -> ()
  | "mpi_barrier", _ -> trap "mpi_barrier takes no arguments"
  | _, _ -> trap "unknown builtin subroutine %s" name

(* ------------------------------------------------------------------ *)
(* Program entry                                                       *)

let prepare_globals ctx =
  let prog = Symtab.program ctx.st in
  List.iter
    (fun u ->
      let uname = Ast.unit_name u in
      List.iter
        (fun (info : Symtab.var_info) ->
          if not info.v_parameter then begin
            let extents =
              List.map
                (fun d ->
                  match Typecheck.static_int ctx.st ~in_proc:None d with
                  | Some n -> n
                  | None -> trap "module array %s.%s has non-constant extent" uname info.v_name)
                info.v_dims
            in
            Hashtbl.replace ctx.globals (global_key uname info.v_name)
              (alloc_cell info.v_base extents)
          end)
        (Symtab.vars_of_scope ctx.st (Symtab.Unit_scope uname)))
    prog;
  List.iter
    (fun u ->
      let uname = Ast.unit_name u in
      List.iter
        (fun (info : Symtab.var_info) ->
          match info.v_init with
          | Some e when not info.v_parameter -> (
            let frame = { proc = None; vars = Hashtbl.create 1 } in
            let v = eval_expr ctx frame e in
            match Hashtbl.find_opt ctx.globals (global_key uname info.v_name) with
            | Some (Scalar r) -> scalar_store ctx frame info.v_name r v
            | Some _ | None -> trap "initializer on module array %s unsupported" info.v_name)
          | Some _ | None -> ())
        (Symtab.vars_of_scope ctx.st (Symtab.Unit_scope uname)))
    prog

(* Index the demotable atoms: only 64-bit declarations can lose precision
   (lowering an already-32-bit atom is the identity). The returned order
   is the order of [atoms]. *)
let index_atoms (atoms : Transform.Assignment.atom list) =
  let tbl = Hashtbl.create 16 in
  let n = ref 0 in
  List.iter
    (fun (a : Transform.Assignment.atom) ->
      if a.Transform.Assignment.a_declared = Ast.K8 then begin
        Hashtbl.replace tbl (a.Transform.Assignment.a_scope, a.Transform.Assignment.a_name) !n;
        incr n
      end)
    atoms;
  (tbl, !n)

(* [callee_touches] oracle for {!alias_guard}: which module variables can
   each procedure (transitively) access by name?  Direct accesses come
   from the def-use summaries — occurrences of a [Unit_scope] variable
   tagged with the procedure they appear in — closed over the call graph. *)
let build_callee_touches st =
  let direct = Hashtbl.create 32 in
  List.iter
    (fun (s : Analysis.Defuse.summary) ->
      match s.scope with
      | Symtab.Unit_scope u ->
        List.iter
          (fun (o : Analysis.Defuse.occurrence) ->
            match o.o_proc with
            | Some p -> Hashtbl.add direct p (u, s.var)
            | None -> ())
          (s.defs @ s.uses)
      | Symtab.Proc_scope _ -> ())
    (Analysis.Defuse.analyze st);
  let cg = Analysis.Callgraph.build st in
  let memo = Hashtbl.create 32 in
  fun callee key ->
    let set =
      match Hashtbl.find_opt memo callee with
      | Some set -> set
      | None ->
        let set = Hashtbl.create 16 in
        List.iter
          (fun p -> List.iter (fun k -> Hashtbl.replace set k ()) (Hashtbl.find_all direct p))
          (Analysis.Callgraph.reachable cg ~roots:[ callee ]);
        Hashtbl.replace memo callee set;
        set
    in
    Hashtbl.mem set key

let analyze ?(max_steps = 20_000_000) ~atoms st =
  let tbl, n_atoms = index_atoms atoms in
  let ctx =
    {
      st;
      atom_of = (fun key -> Hashtbl.find_opt tbl key);
      callee_touches = build_callee_touches st;
      poisoned = Array.make n_atoms false;
      steps = 0;
      max_steps;
      globals = Hashtbl.create 64;
      params = Hashtbl.create 64;
      samples = [];
      depth = 0;
    }
  in
  match
    prepare_globals ctx;
    match Ast.main_of (Symtab.program st) with
    | None -> trap "program has no main unit"
    | Some m ->
      let frame = { proc = None; vars = Hashtbl.create 16 } in
      exec_block ctx frame m.Ast.main_body
  with
  | () ->
    Some
      {
        r_status = Finished;
        r_samples = List.rev ctx.samples;
        r_poisoned = ctx.poisoned;
        r_steps = ctx.steps;
      }
  | exception Stop_signal m ->
    Some
      {
        r_status = Stopped m;
        r_samples = List.rev ctx.samples;
        r_poisoned = ctx.poisoned;
        r_steps = ctx.steps;
      }
  | exception (Trap _ | Value.Bounds _ | Return_signal | Exit_signal | Cycle_signal) -> None
  | exception Step_limit -> None

let atom_indices atoms = fst (index_atoms atoms)
