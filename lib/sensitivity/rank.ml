(* Evidence-driven demotion for the predictive search (DESIGN.md §13).

   The engine watches the committed evaluation stream of a delta-debug
   campaign and, once per ddmin round, predicts which candidates of the
   round will fail so the search can try the others first:

   - error side (monotone: lowering more atoms can only add error): a
     candidate is predicted to fail when some committed error-failure's
     culprit core is contained in the candidate's lowered set. The core
     subtracts atoms proven innocent — statically (sound singleton bound
     under the threshold, via {!Score.atom_bound}) or dynamically (member
     of a committed passing lowered set). An empty core means the
     single-culprit OR-model is inconsistent for that failure (an
     interaction failure): fall back to plain superset dominance on the
     full failing set rather than predicting everything to fail.
   - perf side (anti-monotone and noise-dominated, so set logic does not
     transfer): an OLS speedup model over the committed records' static
     features, refit each round; a candidate is demoted when its
     predicted speedup sits a 2-sigma residual band below the perf floor.

   Both sides are pure functions of the committed-record sequence (which
   {!Search.Speculate} keeps identical across workers, shards and
   resume) and of the assignment, so the steered trajectory is as
   deterministic as the unranked one. *)

open Fortran
module A = Transform.Assignment
module IS = Set.Make (Int)

let feature_names =
  [ "frac_32bit"; "mismatch_edges"; "mismatch_array_elems"; "vector_loops"; "conv_sites" ]

(* static features of a variant, shared with Core.Predictor's dynamic OLS:
   rewrite, rebuild the symtab, and count the mixed-precision frictions
   the flow graph and the vectorizer see *)
let features ~st asg =
  let prog' = Transform.Rewrite.apply st asg in
  let st' = Symtab.build prog' in
  let graph = Analysis.Flowgraph.build st' in
  let violations = Analysis.Flowgraph.violations graph in
  let array_elems =
    List.fold_left
      (fun acc (e : Analysis.Flowgraph.edge) ->
        if e.Analysis.Flowgraph.e_dummy.Analysis.Flowgraph.n_is_array then
          acc
          + Option.value ~default:100 e.Analysis.Flowgraph.e_dummy.Analysis.Flowgraph.n_elements
        else acc)
      0 violations
  in
  let reports = Analysis.Vectorize.analyze st' in
  let vec = List.length (List.filter Analysis.Vectorize.vectorizable reports) in
  let convs =
    List.fold_left
      (fun acc (r : Analysis.Vectorize.report) -> acc + r.Analysis.Vectorize.conv_sites)
      0 reports
  in
  [|
    A.fraction_lowered asg;
    float_of_int (List.length violations);
    float_of_int array_elems;
    float_of_int vec;
    float_of_int convs;
  |]

type outcome = {
  err_ok : bool;
  perf_ok : bool;
  speedup : float;
}

type t = {
  st : Symtab.t;
  atoms : A.atom list;
  aidx : (string, int) Hashtbl.t;
  influential : bool array;
  perf_floor : float;
  feat_memo : (string, float array) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;
  mutable safe : IS.t;  (* proven-innocent atoms: static seed + passes *)
  mutable efailed : IS.t list;  (* influential projections of error fails *)
  mutable samples : (float array * float) list;  (* committed (features, speedup) *)
  mutable perf_fail : float array -> bool;  (* refit by [round] *)
}

(* Atoms whose lowering cannot influence the checked output: scope not
   reachable from the main program, or variable never defined/used, never
   a dummy/result, and without an initializer. Failure evidence is
   projected onto the influential complement, so two variants differing
   only in inert atoms share their evidence. (This mirrors the variable
   set the batch-reuse share key drops.) *)
let influential_atoms st atoms =
  let cg = Analysis.Callgraph.build st in
  let roots = List.map fst (Analysis.Callgraph.callees cg None) in
  let units = List.map Ast.unit_name (Symtab.program st) in
  let scopes =
    List.map (fun u -> Symtab.Unit_scope u) units
    @ List.map
        (fun pr -> Symtab.Proc_scope pr)
        (List.sort_uniq compare (Analysis.Callgraph.reachable cg ~roots))
  in
  let touched = Hashtbl.create 64 in
  List.iter
    (fun (s : Analysis.Defuse.summary) ->
      if s.Analysis.Defuse.defs <> [] || s.Analysis.Defuse.uses <> [] then
        Hashtbl.replace touched (s.Analysis.Defuse.scope, s.Analysis.Defuse.var) ())
    (Analysis.Defuse.analyze st);
  let protected = Hashtbl.create 64 in
  List.iter
    (fun u ->
      match u with
      | Ast.Main _ -> ()
      | Ast.Module m ->
        List.iter
          (fun (pr : Ast.proc) ->
            let scope = Symtab.Proc_scope pr.Ast.proc_name in
            List.iter (fun d -> Hashtbl.replace protected (scope, d) ()) pr.Ast.params;
            match pr.Ast.proc_kind with
            | Ast.Function { result } -> Hashtbl.replace protected (scope, result) ()
            | Ast.Subroutine -> ())
          m.Ast.mod_procs)
    (Symtab.program st);
  let arr = Array.make (List.length atoms) true in
  List.iteri
    (fun i (a : A.atom) ->
      let key = (a.A.a_scope, a.A.a_name) in
      let init =
        match
          Symtab.lookup_var st
            ~in_proc:
              (match a.A.a_scope with
              | Symtab.Proc_scope pr -> Some pr
              | Symtab.Unit_scope _ -> None)
            a.A.a_name
        with
        | Some vi -> vi.Symtab.v_init <> None
        | None -> true
      in
      arr.(i) <-
        List.mem a.A.a_scope scopes
        && (Hashtbl.mem touched key || Hashtbl.mem protected key || init))
    atoms;
  arr

let create ~st ~atoms ~safe ~perf_floor =
  let aidx = Hashtbl.create 64 in
  List.iteri (fun i a -> Hashtbl.replace aidx (A.atom_id a) i) atoms;
  let safe0 =
    IS.of_list (List.filter_map (fun a -> Hashtbl.find_opt aidx (A.atom_id a)) safe)
  in
  {
    st;
    atoms;
    aidx;
    influential = influential_atoms st atoms;
    perf_floor;
    feat_memo = Hashtbl.create 256;
    seen = Hashtbl.create 256;
    safe = safe0;
    efailed = [];
    samples = [];
    perf_fail = (fun _ -> false);
  }

(* lowered set of [asg], projected onto the influential atoms *)
let iset t asg =
  List.fold_left
    (fun acc (a : A.atom) ->
      match Hashtbl.find_opt t.aidx (A.atom_id a) with
      | Some i when t.influential.(i) -> IS.add i acc
      | Some _ | None -> acc)
    IS.empty (A.lowered asg)

let features_of t asg =
  let key = A.signature asg in
  match Hashtbl.find_opt t.feat_memo key with
  | Some f -> f
  | None ->
    let f = features ~st:t.st asg in
    Hashtbl.replace t.feat_memo key f;
    f

let observe t asg outcome =
  let key = A.signature asg in
  (* one observation per distinct variant: memo hits and resume replays
     re-present committed signatures, and must not double-count *)
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    t.samples <- (features_of t asg, outcome.speedup) :: t.samples;
    let s = iset t asg in
    if not outcome.err_ok then t.efailed <- s :: t.efailed
    else if outcome.perf_ok then t.safe <- IS.union s t.safe
    (* pfails (error fine, too slow) leave the error evidence untouched:
       near the floor the outcome is noise, not structure *)
  end

(* perf-side residual band: demote only when the model is confidently
   below the floor *)
let perf_z = 2.0

(* refitting needs enough residual degrees of freedom to trust the sigma *)
let min_samples = 8

let round t =
  t.perf_fail <- (fun _ -> false);
  let usable =
    List.filter (fun (_, s) -> Float.is_finite s && s > 0.0) (List.rev t.samples)
  in
  if List.length usable >= min_samples then
    match
      Metrics.Linreg.fit ~features:(List.map fst usable) ~targets:(List.map snd usable)
    with
    | None -> ()
    | Some m ->
      let errs = List.map (fun (f, s) -> s -. Metrics.Linreg.predict m f) usable in
      let n = List.length errs in
      let sd =
        sqrt (List.fold_left (fun a e -> a +. (e *. e)) 0.0 errs /. float_of_int (n - 1))
      in
      let floor = t.perf_floor in
      t.perf_fail <- (fun feat -> Metrics.Linreg.predict m feat +. (perf_z *. sd) < floor)

let demote t asg =
  (let s = iset t asg in
   List.exists
     (fun f ->
       let core = IS.diff f t.safe in
       let core = if IS.is_empty core then f else core in
       IS.subset core s)
     t.efailed)
  || t.perf_fail (features_of t asg)
