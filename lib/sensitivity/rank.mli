(** Evidence-driven candidate demotion for the predictive delta-debug
    search (DESIGN.md §13).

    One engine watches a campaign's committed evaluation stream
    ({!observe}, deduplicated by signature so memo hits and resume
    replays are idempotent) and answers, once per ddmin round
    ({!round} then {!demote}), which candidates are predicted to fail:

    - {b error side}: a committed error-failure whose culprit {e core} —
      the failing lowered set minus atoms proven innocent statically
      (sound singleton bound within the threshold) or dynamically
      (member of a committed passing lowered set) — is contained in the
      candidate predicts the candidate fails too (error monotonicity).
      When the subtraction empties the core, the failure was an
      interaction, and plain superset dominance on the full failing set
      is used instead.
    - {b perf side}: an OLS speedup model on the committed records'
      static {!features}, refit each {!round}; candidates predicted
      2 residual-sigmas below the performance floor are demoted.

    Every answer is a pure function of the committed-record sequence and
    the assignment, so a search steered by this engine stays bit-identical
    across worker counts, shards, kill/resume and service slicing. *)

type t

(** One committed evaluation, already classified by the caller's
    acceptance criteria: [err_ok] = the error side passed (finished
    within threshold, or timed out before erring), [perf_ok] = the perf
    side passed (no timeout, speedup at or above the floor). *)
type outcome = {
  err_ok : bool;
  perf_ok : bool;
  speedup : float;  (** Eq.-1 speedup; non-positive = unusable for the OLS *)
}

val create :
  st:Fortran.Symtab.t ->
  atoms:Transform.Assignment.atom list ->
  safe:Transform.Assignment.atom list ->
  perf_floor:float ->
  t
(** [safe] seeds the proven-innocent set with the statically safe atoms —
    those whose sound singleton error bound ({!Score.atom_bound}) already
    fits the threshold, and which therefore can never be a lone culprit. *)

val observe : t -> Transform.Assignment.t -> outcome -> unit
(** Feed one consumed evaluation, in committed-record order. Repeat
    signatures are ignored. *)

val round : t -> unit
(** Start a ddmin round: refit the perf-side OLS on the evidence so far.
    Must be called before the round's {!demote} queries. *)

val demote : t -> Transform.Assignment.t -> bool
(** [true] = this candidate is predicted to fail (either side); the
    search should try it after the undemoted candidates. *)

val features : st:Fortran.Symtab.t -> Transform.Assignment.t -> float array
(** Static per-variant features, shared by this engine's round-refit OLS
    and [Core.Predictor]'s reporting model: lowered fraction, flow-graph
    precision-mismatch edge and array-element counts, vectorizable loops
    and conversion sites of the rewritten program. *)

val feature_names : string list
(** Labels for {!features} positions. *)
