(** Search-steering scores fused from the {!Absint} mirror analysis.

    A scorer is built once per campaign (from the prepared original
    program, its baseline metric series, and its resolved error threshold)
    and then queried as a pure function of the assignment — rank order and
    prune decisions depend only on the program and configuration, never on
    scheduling, so any worker/shard/slice count agrees on them. *)

type t

val create :
  st:Fortran.Symtab.t ->
  atoms:Transform.Assignment.atom list ->
  metric_key:string ->
  baseline_metric:float list ->
  threshold:float ->
  margin:float ->
  t option
(** [None] when the analysis cannot vouch for itself: the mirror fails to
    finish, or its concrete output series is not bit-identical to the
    interpreter's [baseline_metric] (fidelity gate). Callers fall back to
    the unpredicted search. *)

val static_bound : t -> Transform.Assignment.t -> float
(** Sound first-order bound on the variant's l2 relative output error:
    the sum of per-atom singleton bounds over the lowered atoms.
    [infinity] when any lowered atom is poisoned (comparison flip,
    integer-conversion drift, overflow, divisor interval reaching zero —
    anything an interval cannot bound). *)

val pass_probability : t -> Transform.Assignment.t -> float
(** Predicted probability the variant's output error stays under the
    campaign threshold, from the (ranking-grade) amplification model:
    threshold / (threshold + bound), monotone decreasing in the bound. *)

val payoff : t -> Transform.Assignment.t -> float
(** Static speedup proxy: 1 + the lowered share of the def-use execution
    weight (1 for the empty assignment, 2 for everything lowered). *)

val score : t -> Transform.Assignment.t -> float
(** Ranking score: predicted pass-probability × predicted speedup payoff.
    Uses the finite amplification heuristic where the sound bound is
    infinite, so it totally orders all variants. Higher is better. *)

val prune : t -> Transform.Assignment.t -> bool
(** [true] when the variant is provably hopeless: its FINITE static bound
    exceeds margin × threshold. An infinite bound is "unknown", never
    grounds for pruning, so a sound analysis never prunes a passer. *)

val atom_bound : t -> Transform.Assignment.atom -> float option
(** The singleton bound for one atom ([None] for atoms outside the
    demotable index, i.e. already 32-bit). *)
