(** Forward error-amplification analysis — a mirror of {!Runtime.Interp}.

    One abstract execution of the ORIGINAL (all-64-bit) program follows the
    interpreter's concrete semantics bit-exactly (same values, same traps,
    same control flow) while every real value additionally carries a sparse
    per-atom map of absolute-error bounds: entry [a] bounds the deviation
    this expression can show in the program variant that demotes precisely
    atom [a] to 32-bit.  All singleton-demotion bounds for every demotable
    atom are computed simultaneously in a single pass.

    Where a demoted run could diverge in a way intervals cannot bound —
    a comparison the error interval can flip, an integer conversion that
    can land on a different integer, a divisor interval reaching zero, an
    overflow past the 32-bit range — the atom is {e poisoned}: its sound
    bound is infinite (the variant may trap, loop differently, or produce
    anything), while its finite error accumulation keeps going and remains
    usable as a ranking heuristic.  See DESIGN.md §13. *)

module IMap : Map.S with type key = int

type status = Finished | Stopped of string | Runtime_error of string

type sample = {
  s_key : string;  (** the [print 'key', ...] series key *)
  s_value : float;  (** the concrete (baseline) sample, bit-exact vs Interp *)
  s_err : float IMap.t;  (** per-atom absolute-error bound on this sample *)
}

type result = {
  r_status : status;
  r_samples : sample list;  (** mirrored print records, in program order *)
  r_poisoned : bool array;  (** per atom index: sound bound is infinite *)
  r_steps : int;
}

val analyze :
  ?max_steps:int -> atoms:Transform.Assignment.atom list -> Fortran.Symtab.t -> result option
(** Run the mirror on the original program. [atoms] fixes the atom
    indexing: the demotable (declared 64-bit) atoms are numbered 0.. in
    list order; already-32-bit atoms are skipped (demoting them is the
    identity).  Returns [None] when the analysis cannot produce a usable
    answer: the baseline itself traps, or the mirror exceeds [max_steps]
    (default 20M). *)

val atom_indices :
  Transform.Assignment.atom list -> (Fortran.Symtab.scope * string, int) Hashtbl.t
(** The exact atom numbering [analyze] uses, keyed by (scope, name). *)
